(* Smoke tests over the experiment catalogue: ids are unique and
   findable, and every experiment produces a renderable, non-trivial
   table in quick mode.  This is the cheap guarantee that
   `bin/repro.exe run all` and the bench harness's reproduction pass
   cannot bit-rot silently. *)

let test_ids_unique () =
  let ids = List.map (fun e -> e.Experiments.Exp.id) Experiments.Exp.all in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "no duplicate ids" (List.length ids) (List.length sorted)

let test_find () =
  Alcotest.(check bool) "fig5 findable" true
    (Option.is_some (Experiments.Exp.find "fig5"));
  Alcotest.(check bool) "unknown id" true (Option.is_none (Experiments.Exp.find "nope"))

let test_expected_catalogue () =
  let ids = List.map (fun e -> e.Experiments.Exp.id) Experiments.Exp.all in
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "%s present" id) true (List.mem id ids))
    [
      "fig1"; "fig3"; "fig4"; "fig5"; "thm3"; "lem2"; "thm4"; "lem7"; "thm5";
      "lem11"; "lem12"; "lift"; "cor2"; "abl-sched"; "abl-wf"; "abl-lock";
      "abl-of"; "abl-tas"; "structs"; "ext-shard"; "ext-mix"; "ext-methods";
      "ext-tail"; "ext-backup"; "ext-replay"; "hw";
    ]

let run_all_quick () =
  List.iter
    (fun e ->
      let rendered = Experiments.Exp.render ~quick:true e in
      Alcotest.(check bool)
        (Printf.sprintf "%s renders non-trivially" e.Experiments.Exp.id)
        true
        (String.length rendered > 100);
      (* The rendered output embeds the title and at least one data row
         beyond the header/separator. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s has rows" e.id)
        true
        (List.length (String.split_on_char '\n' rendered) > 5))
    Experiments.Exp.all

let () =
  Alcotest.run "experiments"
    [
      ( "catalogue",
        [
          Alcotest.test_case "unique ids" `Quick test_ids_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "expected ids" `Quick test_expected_catalogue;
        ] );
      ("smoke", [ Alcotest.test_case "all experiments run (quick)" `Slow run_all_quick ]);
    ]
