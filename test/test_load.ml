(* Tests for the live-service load generator: workload sampling,
   engine determinism and conservation laws, SLO sweep gates, and the
   telemetry manifest round-trip. *)

let prop name ?(count = 100) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

(* -- Workload ------------------------------------------------------ *)

let test_mix_deterministic () =
  Alcotest.(check int) "same inputs" (Load.Workload.mix 7 42) (Load.Workload.mix 7 42);
  Alcotest.(check bool) "different inputs" true
    (Load.Workload.mix 7 42 <> Load.Workload.mix 7 43);
  Alcotest.(check bool) "non-negative" true (Load.Workload.mix (-3) 17 >= 0)

let test_zipf_cdf_shape () =
  let cdf = Load.Workload.zipf_cdf ~alpha:1.1 ~n:64 in
  Alcotest.(check int) "length" 64 (Array.length cdf);
  Alcotest.(check (float 1e-9)) "last pinned" 1.0 cdf.(63);
  for i = 1 to 63 do
    Alcotest.(check bool) "monotone" true (cdf.(i) >= cdf.(i - 1))
  done;
  (* alpha > 0 concentrates mass on low keys. *)
  Alcotest.(check bool) "skewed head" true (cdf.(0) > 1. /. 64.)

let test_zipf_uniform () =
  let cdf = Load.Workload.zipf_cdf ~alpha:0. ~n:10 in
  Alcotest.(check (float 1e-9)) "uniform head" 0.1 cdf.(0)

let test_pick_bounds () =
  let cdf = Load.Workload.zipf_cdf ~alpha:1.1 ~n:16 in
  Alcotest.(check int) "u=0 picks head" 0 (Load.Workload.pick cdf 0.);
  Alcotest.(check int) "u=1 picks tail" 15 (Load.Workload.pick cdf 0.9999999)

let prop_pick_in_range =
  prop "pick lands in [0, n)" ~count:300
    QCheck2.Gen.(pair (int_range 1 40) (float_bound_inclusive 1.))
    (fun (n, u) ->
      let cdf = Load.Workload.zipf_cdf ~alpha:0.8 ~n in
      let k = Load.Workload.pick cdf u in
      k >= 0 && k < n)

let test_request_rng_independent () =
  (* Every request draws from its own stream: the draws for (client, k)
     do not depend on any other request having been sampled. *)
  let a = Load.Workload.request_rng ~seed:0 ~client:5 ~k:2 in
  let b = Load.Workload.request_rng ~seed:0 ~client:5 ~k:2 in
  Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b);
  let c = Load.Workload.request_rng ~seed:0 ~client:5 ~k:3 in
  Alcotest.(check bool) "distinct per k" true
    (Stats.Rng.bits64 (Load.Workload.request_rng ~seed:0 ~client:5 ~k:2)
    <> Stats.Rng.bits64 c)

let test_validate_mode () =
  let ok m = Alcotest.(check bool) "ok" true (Result.is_ok (Load.Workload.validate m)) in
  let err m =
    Alcotest.(check bool) "err" true (Result.is_error (Load.Workload.validate m))
  in
  ok (Load.Workload.Closed { think = 0. });
  ok (Load.Workload.Open (Poisson { rate = 0.1 }));
  err (Load.Workload.Closed { think = -1. });
  err (Load.Workload.Open (Poisson { rate = 0. }));
  err (Load.Workload.Open (Bursty { rate = 0.1; burst = 0; idle = 10. }))

(* -- Engine -------------------------------------------------------- *)

let small_cfg =
  {
    Load.Engine.default with
    clients = 4_000;
    workers = 4;
    shards = 4;
    objects = 8;
  }

let test_engine_conservation () =
  let r = Load.Engine.run small_cfg in
  Alcotest.(check int) "all requests served" 4_000 r.requests;
  Alcotest.(check int) "latency count" 4_000 (Stats.Hdr.count r.latency);
  Alcotest.(check int) "service count" 4_000 (Stats.Hdr.count r.service);
  let per_kind_total =
    List.fold_left (fun acc (_, h) -> acc + Stats.Hdr.count h) 0 r.per_kind
  in
  Alcotest.(check int) "per-kind partitions requests" 4_000 per_kind_total;
  let shard_total =
    List.fold_left
      (fun acc (s : Load.Engine.shard_result) -> acc + s.requests)
      0 r.shards
  in
  Alcotest.(check int) "shards partition requests" 4_000 shard_total;
  Alcotest.(check bool) "finished" false r.stopped_early

let test_engine_pool_matches_sequential () =
  let seq = Load.Engine.run small_cfg in
  let par =
    Pool.with_pool ~size:4 (fun pool -> Load.Engine.run ~pool small_cfg)
  in
  Alcotest.(check int) "requests" seq.requests par.requests;
  Alcotest.(check int) "steps_total" seq.steps_total par.steps_total;
  Alcotest.(check int) "p50" (Stats.Hdr.p50 seq.latency) (Stats.Hdr.p50 par.latency);
  Alcotest.(check int) "p999" (Stats.Hdr.p999 seq.latency) (Stats.Hdr.p999 par.latency);
  Alcotest.(check (float 1e-12)) "mean service" (Stats.Hdr.mean seq.service)
    (Stats.Hdr.mean par.service)

let test_engine_manifest_deterministic () =
  let manifest cfg =
    Telemetry.Load_report.to_string (Load.Report.of_result (Load.Engine.run cfg))
  in
  Alcotest.(check string) "same seed, same bytes" (manifest small_cfg)
    (manifest small_cfg);
  Alcotest.(check bool) "seed changes bytes" true
    (manifest small_cfg <> manifest { small_cfg with seed = 1 })

let test_engine_zoo_round_robin () =
  let cfg =
    { small_cfg with kinds = Load.Engine.all_kinds; clients = 1_000; shards = 2 }
  in
  let r = Load.Engine.run cfg in
  Alcotest.(check int) "kinds" 5 (List.length r.per_kind);
  List.iter
    (fun (_, h) -> Alcotest.(check int) "even split" 200 (Stats.Hdr.count h))
    r.per_kind

let test_engine_open_loop_queues () =
  (* An open loop pushed well past service capacity must show queueing:
     latency strictly dominates service. *)
  let cfg =
    {
      small_cfg with
      clients = 400;
      ops_per_client = 8;
      shards = 1;
      workers = 2;
      mode = Load.Workload.Open (Poisson { rate = 0.5 });
    }
  in
  let r = Load.Engine.run cfg in
  Alcotest.(check int) "served" 3_200 r.requests;
  Alcotest.(check bool) "queue wait recorded" true
    (Stats.Hdr.mean r.queue_wait > 0.);
  Alcotest.(check bool) "queue built up" true
    (List.exists
       (fun (s : Load.Engine.shard_result) -> s.max_queue_depth > 1)
       r.shards)

let test_engine_closed_think_slows_arrivals () =
  (* Few clients, so the run length is arrival-bound, not service-bound:
     think time staggers the (initial) arrivals and stretches the run. *)
  let run think =
    let cfg =
      {
        small_cfg with
        clients = 64;
        mode = Load.Workload.Closed { think };
        shards = 1;
      }
    in
    (Load.Engine.run cfg).steps_max
  in
  Alcotest.(check bool) "think time stretches the run" true
    (run 500. > run 0.)

let test_engine_validate () =
  let err cfg =
    Alcotest.(check bool) "rejected" true
      (Result.is_error (Load.Engine.validate cfg))
  in
  err { small_cfg with clients = -1 };
  err { small_cfg with kinds = [] };
  err { small_cfg with shards = 0 };
  err { small_cfg with workers = 0 };
  err { small_cfg with alpha = -0.5 }

let test_kind_names_round_trip () =
  List.iter
    (fun k ->
      match Load.Engine.kind_of_name (Load.Engine.kind_name k) with
      | Ok k' ->
          Alcotest.(check string) "round trip" (Load.Engine.kind_name k)
            (Load.Engine.kind_name k')
      | Error msg -> Alcotest.fail msg)
    Load.Engine.all_kinds;
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Load.Engine.kind_of_name "skiplist"))

(* -- SLO sweep ----------------------------------------------------- *)

let test_slo_counter_passes () =
  let s =
    Load.Slo.run ~ns:[ 2; 4 ] ~requests_per_point:8_000 ~kind:Load.Engine.Counter
      ~seed:0 ()
  in
  Alcotest.(check bool) "passed" true s.passed;
  Alcotest.(check int) "points" 2 (List.length s.points);
  Alcotest.(check bool) "gates present" true (List.length s.gates > 0);
  List.iter
    (fun (p : Load.Slo.point) ->
      Alcotest.(check bool) "measured something" true (p.requests > 0))
    s.points

let test_slo_waitfree_unclassified () =
  Alcotest.check_raises "no (q,s) classification"
    (Invalid_argument
       "Slo.run: waitfree-counter has no SCU(q, s) classification (its \
        helping scan is Theta(n) per attempt); classified structures: \
        counter, treiber, msqueue, elimination-stack")
    (fun () ->
      ignore (Load.Slo.run ~kind:Load.Engine.Waitfree ~seed:0 ()))

let test_slo_params () =
  let p k = Load.Slo.params_of_kind k in
  Alcotest.(check bool) "counter" true (p Load.Engine.Counter = Some { Load.Slo.q = 0; s = 1 });
  Alcotest.(check bool) "treiber" true (p Load.Engine.Treiber = Some { Load.Slo.q = 1; s = 1 });
  Alcotest.(check bool) "msqueue" true (p Load.Engine.Msqueue = Some { Load.Slo.q = 1; s = 2 });
  Alcotest.(check bool) "waitfree" true (p Load.Engine.Waitfree = None)

(* -- Policy -------------------------------------------------------- *)

let test_policy_validate () =
  let ok p = Alcotest.(check bool) "ok" true (Result.is_ok (Load.Policy.validate p)) in
  let err p =
    Alcotest.(check bool) "err" true (Result.is_error (Load.Policy.validate p))
  in
  ok Load.Policy.default;
  ok { Load.Policy.default with deadline = Some 100; max_retries = 3 };
  ok { Load.Policy.default with hedge_after = Some 8 };
  err { Load.Policy.default with deadline = Some 0 };
  err { Load.Policy.default with max_retries = -1 };
  err { Load.Policy.default with backoff_base = 0 };
  err { Load.Policy.default with hedge_after = Some 0 };
  (* Retries without a deadline can never trigger. *)
  err { Load.Policy.default with max_retries = 2 }

let test_policy_backoff () =
  let p = { Load.Policy.default with backoff_base = 16 } in
  let b = Load.Policy.backoff p ~seed:0 ~rid:7 ~attempt:1 in
  Alcotest.(check int) "pure function of (seed, rid, attempt)" b
    (Load.Policy.backoff p ~seed:0 ~rid:7 ~attempt:1);
  Alcotest.(check bool) "exponential floor, bounded jitter" true
    (b >= 16 && b < 32);
  let b2 = Load.Policy.backoff p ~seed:0 ~rid:7 ~attempt:2 in
  Alcotest.(check bool) "attempt 2 doubles" true (b2 >= 32 && b2 < 48);
  Alcotest.(check bool) "seed matters" true
    (Load.Policy.backoff p ~seed:1 ~rid:7 ~attempt:1 <> b
    || Load.Policy.backoff p ~seed:1 ~rid:8 ~attempt:1
       <> Load.Policy.backoff p ~seed:0 ~rid:8 ~attempt:1)

let test_policy_counts_algebra () =
  let a =
    { Load.Policy.zero_counts with ok = 3; retried = 2; timed_out = 1 }
  in
  let b = { Load.Policy.zero_counts with dropped = 4; retries = 9 } in
  let s = Load.Policy.add_counts a b in
  Alcotest.(check int) "completed" 5 (Load.Policy.completed s);
  Alcotest.(check int) "failed" 5 (Load.Policy.failed s);
  Alcotest.(check int) "total partitions" 10 (Load.Policy.total s);
  Alcotest.(check int) "retries carried" 9 s.retries

(* -- Fault-tolerant engine ----------------------------------------- *)

(* Pinned-outcome drills: the engine is a pure function of its config,
   so the full outcome taxonomy of each drill is a regression
   constant.  A change here means the robust dispatch path changed
   behaviour, not just refactored. *)

let counts =
  Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (Load.Policy.counts_to_string c))
    ( = )

let tight_cfg =
  { small_cfg with clients = 2_000; workers = 2; shards = 2 }

let test_deadline_expiry_pinned () =
  let cfg =
    { tight_cfg with policy = { Load.Policy.default with deadline = Some 40 } }
  in
  let r = Load.Engine.run cfg in
  Alcotest.check counts "deadline-expiry taxonomy"
    {
      Load.Policy.zero_counts with
      ok = 37;
      timed_out = 1_963;
    }
    r.outcomes;
  Alcotest.(check int) "requests = completed" 37 r.requests;
  Alcotest.(check int) "offered is the full load" 2_000 r.offered;
  Alcotest.(check bool) "resolved, not stopped" false r.stopped_early

let test_retry_exhaustion_pinned () =
  let cfg =
    {
      tight_cfg with
      policy = { Load.Policy.default with deadline = Some 40; max_retries = 2 };
    }
  in
  let r = Load.Engine.run cfg in
  Alcotest.check counts "retry-exhaustion taxonomy"
    {
      Load.Policy.zero_counts with
      ok = 37;
      retried = 103;
      retries = 3_881;
      timed_out = 1_860;
    }
    r.outcomes;
  Alcotest.(check int) "every request resolves" 2_000
    (Load.Policy.total r.outcomes)

let test_hedge_pinned () =
  let cfg =
    {
      tight_cfg with
      workers = 8;
      policy = { Load.Policy.default with hedge_after = Some 4 };
    }
  in
  let r = Load.Engine.run cfg in
  Alcotest.check counts "hedging costs duplicates, loses nothing"
    { Load.Policy.zero_counts with ok = 2_000; hedges = 1_657 }
    r.outcomes

let faulted_cfg =
  {
    Load.Engine.default with
    clients = 4_000;
    workers = 4;
    shards = 4;
    objects = 8;
    faults =
      {
        Sched.Fault_plan.base = Sched.Fault_plan.none;
        rates = Sched.Fault_plan.standard_rates;
      };
    policy = { Load.Policy.default with deadline = Some 400; max_retries = 2 };
  }

let test_faulted_standard_pinned () =
  let r = Load.Engine.run faulted_cfg in
  Alcotest.check counts "standard-tier taxonomy"
    {
      Load.Policy.ok = 624;
      retried = 1_252;
      retries = 6_147;
      redelivered = 43;
      hedges = 0;
      timed_out = 2_124;
      dropped = 0;
    }
    r.outcomes;
  Alcotest.(check int) "injected restarts" 44 r.restarts;
  Alcotest.(check int) "injected spurious CAS" 47 r.spurious_cas

let test_faulted_deterministic () =
  let manifest r =
    Telemetry.Load_report.to_string (Load.Report.of_result r)
  in
  let seq = manifest (Load.Engine.run faulted_cfg) in
  Alcotest.(check string) "same seed, same bytes" seq
    (manifest (Load.Engine.run faulted_cfg));
  let par =
    Pool.with_pool ~size:4 (fun pool ->
        manifest (Load.Engine.run ~pool faulted_cfg))
  in
  Alcotest.(check string) "pool does not change bytes" seq par

let test_faulted_manifest_schema () =
  let report cfg = Load.Report.of_result (Load.Engine.run cfg) in
  let json cfg = Telemetry.Load_report.to_string (report cfg) in
  let has s sub =
    let ns = String.length s and nb = String.length sub in
    let rec go i = i + nb <= ns && (String.sub s i nb = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "fault-free stays schema 1" true
    (has (json small_cfg) Telemetry.Load_report.schema);
  Alcotest.(check bool) "faulted upgrades to schema 2" true
    (has (json faulted_cfg) Telemetry.Load_report.schema_v2)

let test_outage_all_dropped () =
  (* Permanently crash both workers: the shard must degrade to an
     all-dropped stopped-early result instead of running (the executor
     itself rejects total-outage plans). *)
  let cfg =
    {
      tight_cfg with
      shards = 2;
      faults =
        {
          Load.Engine.no_faults with
          Sched.Fault_plan.base =
            Sched.Fault_plan.of_crash_events [ (0, 0); (0, 1) ];
        };
    }
  in
  let r = Load.Engine.run cfg in
  Alcotest.(check int) "nothing served" 0 r.requests;
  Alcotest.check counts "everything dropped"
    { Load.Policy.zero_counts with dropped = 2_000 }
    r.outcomes;
  Alcotest.(check bool) "stopped early" true r.stopped_early;
  Alcotest.(check (list int)) "both shards named" [ 0; 1 ]
    (Load.Engine.stopped_shards r)

let test_shard_plan_deterministic () =
  let plan s = Load.Engine.shard_plan faulted_cfg ~shard:s ~total:1_000 in
  Alcotest.(check bool) "same shard, same plan" true
    (Sched.Fault_plan.events (plan 0) = Sched.Fault_plan.events (plan 0));
  Alcotest.(check bool) "shards draw independent plans" true
    (Sched.Fault_plan.events (plan 0) <> Sched.Fault_plan.events (plan 1))

let test_error_budget_verdicts () =
  let budget cfg = Load.Report.error_budget (Load.Engine.run cfg) in
  let healthy = budget { small_cfg with clients = 500 } in
  Alcotest.(check string) "fault-free meets the objective" "ok"
    healthy.Telemetry.Load_report.verdict;
  Alcotest.(check (float 1e-9)) "full availability" 1.0 healthy.availability;
  let hurt =
    budget
      { tight_cfg with policy = { Load.Policy.default with deadline = Some 40 } }
  in
  Alcotest.(check string) "mass timeouts breach the budget" "breached"
    hurt.Telemetry.Load_report.verdict;
  Alcotest.(check bool) "burn is enormous" true (hurt.burn > 10.)

(* -- Degradation gates --------------------------------------------- *)

let test_degrade_budgets_table () =
  List.iter
    (fun tier ->
      Alcotest.(check bool) tier true
        (Load.Degrade.budgets_for_tier tier <> None))
    [ "quick"; "standard"; "century"; "chaos" ];
  Alcotest.(check bool) "unknown tier" true
    (Load.Degrade.budgets_for_tier "hurricane" = None)

(* A deadline comfortably above the queueing delay, so the standard
   tier's budget is spent on injected faults rather than self-inflicted
   timeouts (the CLI's --expect-degraded drills use the same shape). *)
let degrade_cfg =
  {
    Load.Engine.default with
    clients = 8_000;
    workers = 8;
    shards = 4;
    objects = 16;
    policy = { Load.Policy.default with deadline = Some 4_000; max_retries = 2 };
  }

let test_degrade_standard_passes () =
  match Load.Degrade.run ~tier:"standard" degrade_cfg with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check bool) "within budget" true d.passed;
      Alcotest.(check int) "five gates" 5 (List.length d.gates);
      Alcotest.(check bool) "baseline leg is fault-free" false
        (Load.Engine.is_robust d.baseline.config)

let test_degrade_unknown_tier () =
  Alcotest.(check bool) "unknown tier is an error" true
    (Result.is_error (Load.Degrade.run ~tier:"hurricane" faulted_cfg))

let test_crash_check_gates () =
  let gates = Load.Degrade.crash_check ~k:2 faulted_cfg in
  Alcotest.(check int) "three gates" 3 (List.length gates);
  List.iter
    (fun (g : Check.Conform.gate) ->
      Alcotest.(check bool) (g.name ^ ": " ^ g.detail) true g.passed)
    gates;
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Degrade.crash_check: need 0 < k < workers")
    (fun () -> ignore (Load.Degrade.crash_check ~k:4 faulted_cfg))

(* -- Manifest ------------------------------------------------------ *)

let test_manifest_json_round_trip () =
  let r = Load.Engine.run { small_cfg with clients = 500 } in
  let gates =
    [ Check.Conform.gate "slo-demo" true "demo gate for serialization" ]
  in
  let report = Load.Report.of_result ~window:3 ~slo:gates r in
  let json = Telemetry.Json.parse_exn (Telemetry.Load_report.to_string report) in
  let get path conv =
    match Telemetry.Json.member path json with
    | Some v -> conv v
    | None -> Alcotest.failf "missing field %s" path
  in
  Alcotest.(check (option string))
    "schema" (Some Telemetry.Load_report.schema)
    (get "schema" Telemetry.Json.to_str);
  Alcotest.(check (option int)) "requests" (Some 500)
    (get "requests" Telemetry.Json.to_int);
  Alcotest.(check (option int)) "window" (Some 3)
    (get "window" Telemetry.Json.to_int);
  Alcotest.(check (option bool)) "stopped_early" (Some false)
    (get "stopped_early" Telemetry.Json.to_bool);
  (match get "latency" Fun.id |> Telemetry.Json.member "p99" with
  | Some p99 ->
      Alcotest.(check bool) "p99 positive" true
        (Telemetry.Json.to_int p99 > Some 0)
  | None -> Alcotest.fail "missing latency.p99");
  match get "slo" Telemetry.Json.to_list with
  | Some [ g ] ->
      Alcotest.(check (option string))
        "gate name" (Some "slo-demo")
        (Telemetry.Json.member "gate" g |> Option.map (fun v -> Option.get (Telemetry.Json.to_str v)))
  | _ -> Alcotest.fail "expected one slo gate row"

let test_manifest_compact_single_line () =
  let r = Load.Engine.run { small_cfg with clients = 200 } in
  let line = Telemetry.Load_report.to_string ~compact:true (Load.Report.of_result r) in
  Alcotest.(check bool) "no newline" false (String.contains line '\n')

let test_render_mentions_gates () =
  let r = Load.Engine.run { small_cfg with clients = 200 } in
  let gates = [ Check.Conform.gate "slo-x" false "boom" ] in
  let s = Load.Report.render (Load.Report.of_result ~slo:gates r) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "FAIL rendered" true (contains s "FAIL slo-x")

let () =
  Alcotest.run "load"
    [
      ( "workload",
        [
          Alcotest.test_case "mix deterministic" `Quick test_mix_deterministic;
          Alcotest.test_case "zipf cdf shape" `Quick test_zipf_cdf_shape;
          Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "pick bounds" `Quick test_pick_bounds;
          prop_pick_in_range;
          Alcotest.test_case "request rng independent" `Quick
            test_request_rng_independent;
          Alcotest.test_case "mode validation" `Quick test_validate_mode;
        ] );
      ( "engine",
        [
          Alcotest.test_case "conservation" `Quick test_engine_conservation;
          Alcotest.test_case "pool matches sequential" `Quick
            test_engine_pool_matches_sequential;
          Alcotest.test_case "manifest deterministic" `Quick
            test_engine_manifest_deterministic;
          Alcotest.test_case "zoo round robin" `Quick test_engine_zoo_round_robin;
          Alcotest.test_case "open loop queues" `Quick test_engine_open_loop_queues;
          Alcotest.test_case "think time slows arrivals" `Quick
            test_engine_closed_think_slows_arrivals;
          Alcotest.test_case "config validation" `Quick test_engine_validate;
          Alcotest.test_case "kind names round trip" `Quick
            test_kind_names_round_trip;
        ] );
      ( "policy",
        [
          Alcotest.test_case "validation" `Quick test_policy_validate;
          Alcotest.test_case "deterministic backoff" `Quick test_policy_backoff;
          Alcotest.test_case "counts algebra" `Quick test_policy_counts_algebra;
        ] );
      ( "robust",
        [
          Alcotest.test_case "deadline expiry pinned" `Quick
            test_deadline_expiry_pinned;
          Alcotest.test_case "retry exhaustion pinned" `Quick
            test_retry_exhaustion_pinned;
          Alcotest.test_case "hedging pinned" `Quick test_hedge_pinned;
          Alcotest.test_case "faulted standard pinned" `Quick
            test_faulted_standard_pinned;
          Alcotest.test_case "faulted deterministic" `Quick
            test_faulted_deterministic;
          Alcotest.test_case "manifest schema split" `Quick
            test_faulted_manifest_schema;
          Alcotest.test_case "total outage degrades" `Quick
            test_outage_all_dropped;
          Alcotest.test_case "shard plans deterministic" `Quick
            test_shard_plan_deterministic;
          Alcotest.test_case "error budget verdicts" `Quick
            test_error_budget_verdicts;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "budgets table" `Quick test_degrade_budgets_table;
          Alcotest.test_case "standard tier within budget" `Quick
            test_degrade_standard_passes;
          Alcotest.test_case "unknown tier" `Quick test_degrade_unknown_tier;
          Alcotest.test_case "corollary-2 crash check" `Quick
            test_crash_check_gates;
        ] );
      ( "slo",
        [
          Alcotest.test_case "counter sweep passes" `Quick test_slo_counter_passes;
          Alcotest.test_case "waitfree unclassified" `Quick
            test_slo_waitfree_unclassified;
          Alcotest.test_case "params table" `Quick test_slo_params;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "json round trip" `Quick test_manifest_json_round_trip;
          Alcotest.test_case "compact single line" `Quick
            test_manifest_compact_single_line;
          Alcotest.test_case "render mentions gates" `Quick
            test_render_mentions_gates;
        ] );
    ]
