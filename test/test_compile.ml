(* Pins for the instruction-compilation layer and the compiled
   executor's byte-identity contract: opcode encoding, assembler
   validation messages, the unified Executor.Config API (defaults,
   builders, validation, the deprecated [run] wrapper), batched versus
   per-step scheduler draws, the Stepbench measurement protocol, and
   the interpreter-vs-compiled differential property suite. *)

open Core

let invalid msg f = Alcotest.check_raises msg (Invalid_argument msg) f

(* -- Opcode encoding ------------------------------------------------ *)

(* The flat encoding is load-bearing: the executor's dispatch loop,
   [Compile.to_program] and the shared/local split (opcode <=
   last_shared) all assume these exact values, so renumbering is a
   breaking change this test makes loud. *)
let test_encoding () =
  let open Sim.Compile in
  Alcotest.(check int) "nregs" 8 nregs;
  Alcotest.(check int) "read" 0 Op.read;
  Alcotest.(check int) "write" 1 Op.write;
  Alcotest.(check int) "cas" 2 Op.cas;
  Alcotest.(check int) "cas_get" 3 Op.cas_get;
  Alcotest.(check int) "faa" 4 Op.faa;
  Alcotest.(check int) "last_shared" 4 Op.last_shared;
  Alcotest.(check int) "halt" 5 Op.halt;
  Alcotest.(check int) "complete" 6 Op.complete;
  Alcotest.(check int) "loadi" 7 Op.loadi;
  Alcotest.(check int) "mov" 8 Op.mov;
  Alcotest.(check int) "addi" 9 Op.addi;
  Alcotest.(check int) "add" 10 Op.add;
  Alcotest.(check int) "sub" 11 Op.sub;
  Alcotest.(check int) "jmp" 12 Op.jmp;
  Alcotest.(check int) "beq" 13 Op.beq;
  Alcotest.(check int) "bne" 14 Op.bne;
  Alcotest.(check int) "blt" 15 Op.blt;
  Alcotest.(check int) "rand" 16 Op.rand;
  Alcotest.(check int) "now" 17 Op.now;
  Alcotest.(check int) "pid" 18 Op.pid;
  Alcotest.(check int) "nproc" 19 Op.nproc;
  Alcotest.(check int) "alloc" 20 Op.alloc;
  Alcotest.(check int) "count" 21 Op.count

(* -- Assembler validation ------------------------------------------- *)

let test_assemble_validation () =
  let open Sim.Compile in
  let asm l () = ignore (assemble l) in
  invalid "Compile.assemble: empty program" (asm []);
  invalid "Compile.assemble: read: register 8 out of range (0..7)"
    (asm [ Read 8 ]);
  invalid "Compile.assemble: write: register -1 out of range (0..7)"
    (asm [ Write (-1, 0) ]);
  invalid "Compile.assemble: duplicate label l"
    (asm [ Label "l"; Read 0; Label "l" ]);
  invalid "Compile.assemble: jmp: unknown label nowhere" (asm [ Jmp "nowhere" ]);
  invalid "Compile.assemble: beq: unknown label gone"
    (asm [ Beq (0, 0, "gone") ]);
  invalid "Compile.assemble: negative method id" (asm [ Complete_method (-1) ]);
  invalid "Compile.assemble: rand bound must be positive" (asm [ Rand (1, 0) ]);
  invalid "Compile.assemble: alloc size must be positive" (asm [ Alloc (1, 0) ])

let test_layout () =
  let open Sim.Compile in
  let c = assemble [ Read 3 ] in
  Alcotest.(check int) "implicit halt appended" 2 (word_count c);
  Alcotest.(check bool) "falls through => has_halt" true c.has_halt;
  Alcotest.(check int) "one shared op" 1 c.shared_ops;
  (* Closed ring: jumps back to the top, can never reach a halt — the
     shape that licenses the executor's batched fast path. *)
  let ring = assemble [ Label "top"; Faa (3, 1); Complete; Jmp "top" ] in
  Alcotest.(check bool) "closed ring => no reachable halt" false ring.has_halt;
  Alcotest.(check bool) "explicit halt"
    true
    (assemble [ Read 3; Halt ]).has_halt;
  (* A label at the very end resolves to the implicit halt word. *)
  let tail =
    assemble
      [ Label "top"; Faa (3, 1); Beq (1, 1, "out"); Jmp "top"; Label "out" ]
  in
  Alcotest.(check bool) "trailing label reaches implicit halt" true
    tail.has_halt;
  Alcotest.(check int) "disassembly: one line per word" (word_count ring)
    (List.length (String.split_on_char '\n' (String.trim (disassemble ring))))

(* -- Counter kernel parity ------------------------------------------ *)

let test_counter_parity () =
  let m_i = Experiments.Stepbench.counter_interp ~seed:7 ~n:8 ~steps:20_000 () in
  let m_c =
    Experiments.Stepbench.counter_compiled ~seed:7 ~n:8 ~steps:20_000 ()
  in
  Alcotest.(check string) "interp/compiled metrics byte-identical"
    (Sim.Metrics.fingerprint m_i)
    (Sim.Metrics.fingerprint m_c)

(* -- Config API ----------------------------------------------------- *)

let test_config_defaults () =
  let d = Sim.Executor.Config.default in
  Alcotest.(check int) "seed" 0xC0FFEE d.Sim.Executor.Config.seed;
  Alcotest.(check bool) "trace off" false d.Sim.Executor.Config.trace;
  Alcotest.(check bool) "samples off" false
    d.Sim.Executor.Config.record_samples;
  Alcotest.(check bool) "no faults" true
    (Sched.Fault_plan.is_none d.Sim.Executor.Config.fault_plan);
  Alcotest.(check int) "max_steps" 200_000_000 d.Sim.Executor.Config.max_steps;
  Alcotest.(check int) "invariant interval" 1000
    d.Sim.Executor.Config.invariant_interval;
  Alcotest.(check bool) "no invariant" true
    (d.Sim.Executor.Config.invariant = None);
  Alcotest.(check bool) "no choice hook" true
    (d.Sim.Executor.Config.choose = None)

let test_config_builders () =
  let open Sim.Executor.Config in
  let c =
    default |> with_seed 5 |> with_trace true |> with_samples true
    |> with_max_steps 77
    |> with_choose (fun ~alive:_ ~time:_ -> None)
  in
  Alcotest.(check int) "with_seed" 5 c.seed;
  Alcotest.(check bool) "with_trace" true c.trace;
  Alcotest.(check bool) "with_samples" true c.record_samples;
  Alcotest.(check int) "with_max_steps" 77 c.max_steps;
  Alcotest.(check bool) "with_choose" true (c.choose <> None);
  let inv = (fun _ ~time:_ -> ()) in
  let c1 = c |> with_invariant inv in
  Alcotest.(check int) "with_invariant keeps current interval" 1000
    c1.invariant_interval;
  Alcotest.(check bool) "invariant installed" true (c1.invariant <> None);
  let c2 = c |> with_invariant ~interval:9 inv in
  Alcotest.(check int) "with_invariant ~interval" 9 c2.invariant_interval

let counter_spec () = (Scu.Counter.make ~n:4).Scu.Counter.spec

let test_exec_validation () =
  let scheduler = Sched.Scheduler.uniform in
  let stop = Sim.Executor.Steps 1 in
  invalid "Executor.run: n must be positive" (fun () ->
      ignore (Sim.Executor.exec ~scheduler ~n:0 ~stop (counter_spec ())));
  let bad_interval =
    Sim.Executor.Config.
      { default with invariant = Some (fun _ ~time:_ -> ()); invariant_interval = 0 }
  in
  invalid "Executor.run: invariant_interval must be >= 1" (fun () ->
      ignore
        (Sim.Executor.exec ~config:bad_interval ~scheduler ~n:2 ~stop
           (counter_spec ())));
  let all_crash =
    Sched.Fault_plan.make
      [ (0, Sched.Fault_plan.Crash 0); (0, Sched.Fault_plan.Crash 1) ]
  in
  invalid "Executor.run: fault plan: all processes would crash permanently"
    (fun () ->
      ignore
        (Sim.Executor.exec
           ~config:Sim.Executor.Config.(default |> with_faults all_crash)
           ~scheduler ~n:2 ~stop (counter_spec ())))

(* -- Batched scheduler draws ---------------------------------------- *)

let compiled_counter_result ?(config = Sim.Executor.Config.default) ~scheduler
    ~steps () =
  let c = Scu.Counter.make_compiled ~n:6 in
  Sim.Executor.exec_compiled
    ~config:Sim.Executor.Config.(config |> with_seed 11)
    ~scheduler ~n:6
    ~stop:(Sim.Executor.Steps steps)
    c.Scu.Counter.cspec

let test_batched_matches_per_step () =
  (* Dropping [fill] forces the per-step pick path; the batched draw
     stream must be bit-for-bit the same. *)
  let batched =
    compiled_counter_result ~scheduler:Sched.Scheduler.uniform ~steps:30_000 ()
  in
  let per_step =
    compiled_counter_result
      ~scheduler:{ Sched.Scheduler.uniform with fill = None }
      ~steps:30_000 ()
  in
  Alcotest.(check string) "fill = None stream identical"
    (Sim.Executor.fingerprint batched)
    (Sim.Executor.fingerprint per_step)

let test_fast_loop_matches_instrumented () =
  (* An inert invariant routes the run through the instrumented batched
     loop instead of the fully-inlined one; observables must agree. *)
  let fast =
    compiled_counter_result ~scheduler:Sched.Scheduler.uniform ~steps:30_000 ()
  in
  let instrumented =
    compiled_counter_result
      ~config:
        Sim.Executor.Config.(
          default |> with_invariant ~interval:1_000 (fun _ ~time:_ -> ()))
      ~scheduler:Sched.Scheduler.uniform ~steps:30_000 ()
  in
  Alcotest.(check string) "fast loop == instrumented loop"
    (Sim.Executor.fingerprint fast)
    (Sim.Executor.fingerprint instrumented)

let test_fast_loop_matches_faulted_slow_loop () =
  (* A stall scheduled far past the horizon never fires but disables
     batching entirely — the per-pick fault loop must replay the same
     run. *)
  let fast =
    compiled_counter_result ~scheduler:Sched.Scheduler.uniform ~steps:30_000 ()
  in
  let slow =
    compiled_counter_result
      ~config:
        Sim.Executor.Config.(
          default
          |> with_faults
               (Sched.Fault_plan.make
                  [ (1_000_000, Sched.Fault_plan.Stall (0, 5)) ]))
      ~scheduler:Sched.Scheduler.uniform ~steps:30_000 ()
  in
  Alcotest.(check string) "fast loop == fault-checking loop"
    (Sim.Executor.fingerprint fast)
    (Sim.Executor.fingerprint slow)

(* -- Stepbench measurement protocol --------------------------------- *)

let test_median_of () =
  let open Experiments.Stepbench in
  Alcotest.(check (float 0.)) "odd count: middle" 2. (median_of [| 3.; 1.; 2. |]);
  Alcotest.(check (float 0.)) "even count: lower median" 2.
    (median_of [| 4.; 1.; 3.; 2. |]);
  Alcotest.(check (float 0.)) "singleton" 5. (median_of [| 5. |]);
  invalid "Stepbench.median_of: empty samples" (fun () ->
      ignore (median_of [||]))

let test_measure_protocol () =
  let open Experiments.Stepbench in
  (* Fake clock: each run of [work] advances the clock by the run
     index, so sample k of the timed phase is exactly (warmup + k + 1)
     — warmup runs execute but are not timed. *)
  let calls = ref 0 in
  let t = ref 0. in
  let work () =
    incr calls;
    t := !t +. float_of_int !calls
  in
  let m = measure ~clock:(fun () -> !t) ~protocol:{ warmup = 2; repeat = 3 } work in
  Alcotest.(check int) "warmup runs execute" 5 !calls;
  Alcotest.(check (array (float 0.))) "samples in run order" [| 3.; 4.; 5. |]
    m.samples;
  Alcotest.(check (float 0.)) "median of samples" 4. m.median;
  Alcotest.(check (float 0.)) "default protocol = 1 warmup, 3 timed" 3.
    (float_of_int default.warmup *. float_of_int default.repeat);
  invalid "Stepbench.measure: warmup must be >= 0" (fun () ->
      ignore (measure ~protocol:{ warmup = -1; repeat = 1 } ignore));
  invalid "Stepbench.measure: repeat must be >= 1" (fun () ->
      ignore (measure ~protocol:{ warmup = 0; repeat = 0 } ignore))

let test_steps_per_sec () =
  let open Experiments.Stepbench in
  Alcotest.(check (float 0.)) "rate" 50. (steps_per_sec ~steps:100 ~seconds:2.);
  Alcotest.(check (float 0.)) "zero time" infinity
    (steps_per_sec ~steps:100 ~seconds:0.)

(* -- Differential: interpreter vs compiled -------------------------- *)

let case_of_seed seed =
  let rng = Stats.Rng.create ~seed in
  Check.Differential.gen_case ~id:seed ~rng

let prop_interp_compiled_identical =
  Test_util.prop "interpreter and compiled executor byte-identical" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    ~print:(fun seed -> Check.Differential.case_to_string (case_of_seed seed))
    (fun seed ->
      (Check.Differential.run_case (case_of_seed seed)).Check.Differential.equal)

let test_differential_trials () =
  match Check.Differential.run_trials ~seed:42 ~trials:120 with
  | None -> ()
  | Some (case, outcome) ->
      Alcotest.failf "interpreter/compiled divergence:\n%s\n%s"
        (Check.Differential.case_to_string case)
        outcome.Check.Differential.detail

let () =
  Alcotest.run "compile"
    [
      ( "encoding",
        [
          Alcotest.test_case "opcode numbering" `Quick test_encoding;
          Alcotest.test_case "assembler validation" `Quick
            test_assemble_validation;
          Alcotest.test_case "layout and halt analysis" `Quick test_layout;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "builders" `Quick test_config_builders;
          Alcotest.test_case "validation" `Quick test_exec_validation;
        ] );
      ( "executor paths",
        [
          Alcotest.test_case "counter kernel parity" `Quick test_counter_parity;
          Alcotest.test_case "batched = per-step picks" `Quick
            test_batched_matches_per_step;
          Alcotest.test_case "fast loop = instrumented loop" `Quick
            test_fast_loop_matches_instrumented;
          Alcotest.test_case "fast loop = fault-checking loop" `Quick
            test_fast_loop_matches_faulted_slow_loop;
        ] );
      ( "stepbench",
        [
          Alcotest.test_case "median_of" `Quick test_median_of;
          Alcotest.test_case "measure protocol" `Quick test_measure_protocol;
          Alcotest.test_case "steps_per_sec" `Quick test_steps_per_sec;
        ] );
      ( "differential",
        [
          prop_interp_compiled_identical;
          Alcotest.test_case "seeded trial sweep" `Quick
            test_differential_trials;
        ] );
    ]
