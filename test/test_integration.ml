(* Integration tests: the simulator, the exact Markov chains, and the
   balls-into-bins game must all tell the same story.  These are the
   executable versions of the paper's headline claims:

   - simulated SCU(0,1) latency = exact system-chain latency (§6.1);
   - simulated individual latency ~ n x system latency (Lemma 7);
   - simulated parallel code latency = q and nq exactly in expectation
     (Lemma 11);
   - simulated augmented-CAS counter latency = Z(n-1) (Lemma 12);
   - Theorem 3: under any weakly-fair scheduler every process keeps
     completing (maximal progress w.p. 1), with the bound degrading as
     theta shrinks;
   - Theorem 4 composition: latency(q,s,n) ~ q + alpha s sqrt(n). *)

open Core

let uniform = Sched.Scheduler.uniform

(* Every run in this file is a plain seeded run; faults are expressed
   as fault plans where needed. *)
let run ~seed ?fault_plan ~scheduler ~n ~stop spec =
  let config =
    Sim.Executor.Config.(
      default |> with_seed seed
      |> with_faults (Option.value fault_plan ~default:Sched.Fault_plan.none))
  in
  Sim.Executor.exec ~config ~scheduler ~n ~stop spec

let within ?(tol = 0.05) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.4f, measured %.4f" name expected actual)
    true
    (Float.abs (actual -. expected) /. expected <= tol)

let test_counter_sim_matches_chain () =
  (* The CAS counter is SCU(0,1): its long-run system latency must
     match the exact stationary value of the system chain. *)
  List.iter
    (fun n ->
      let exact = Chains.Scu_chain.System.system_latency ~n in
      let c = Scu.Counter.make ~n in
      let r =
        run ~seed:(1000 + n) ~scheduler:uniform ~n ~stop:(Steps 600_000)
          c.spec
      in
      within ~tol:0.03
        (Printf.sprintf "W sim-vs-chain n=%d" n)
        exact
        (Sim.Metrics.mean_system_latency r.metrics))
    [ 2; 4; 8 ]

let test_fairness_lemma7_in_simulation () =
  let n = 6 in
  let c = Scu.Counter.make ~n in
  let r =
    run ~seed:7 ~scheduler:uniform ~n ~stop:(Steps 1_200_000) c.spec
  in
  within ~tol:0.05 "individual/system ratio = 1" 1. (Sim.Metrics.fairness_ratio r.metrics);
  (* And every process's latency is individually close to n*W. *)
  let w = Sim.Metrics.mean_system_latency r.metrics in
  for i = 0 to n - 1 do
    within ~tol:0.1
      (Printf.sprintf "W_%d = nW" i)
      (float_of_int n *. w)
      (Sim.Metrics.mean_individual_latency r.metrics i)
  done

let test_parallel_code_lemma11_in_simulation () =
  List.iter
    (fun (n, q) ->
      let p = Scu.Parallel_code.make ~n ~q in
      let r =
        run ~seed:(n * q) ~scheduler:uniform ~n ~stop:(Steps 400_000) p.spec
      in
      within ~tol:0.02
        (Printf.sprintf "W = q (n=%d q=%d)" n q)
        (float_of_int q)
        (Sim.Metrics.mean_system_latency r.metrics);
      within ~tol:0.08
        (Printf.sprintf "W_0 = nq (n=%d q=%d)" n q)
        (float_of_int (n * q))
        (Sim.Metrics.mean_individual_latency r.metrics 0))
    [ (4, 3); (8, 5) ]

let test_aug_counter_matches_z_recurrence () =
  List.iter
    (fun n ->
      let exact = (Chains.Counter_chain.z_recurrence ~n).(n - 1) in
      let c = Scu.Counter_aug.make ~n in
      let r =
        run ~seed:(77 + n) ~scheduler:uniform ~n ~stop:(Steps 600_000) c.spec
      in
      within ~tol:0.03
        (Printf.sprintf "aug counter W = Z(n-1) at n=%d" n)
        exact
        (Sim.Metrics.mean_system_latency r.metrics))
    [ 2; 4; 8; 16 ]

let test_scan_steps_scale_theorem4 () =
  (* Corollary 1: with s scan steps, system latency ~ alpha s sqrt(n).
     Measure s=1 vs s=3 at fixed n: the ratio should approach 3 (each
     retry costs s+1 steps instead of 2; allow broad tolerance). *)
  let n = 16 in
  let latency s =
    let p = Scu.Scu_pattern.make ~n ~q:0 ~s in
    let r =
      run ~seed:(90 + s) ~scheduler:uniform ~n ~stop:(Steps 800_000) p.spec
    in
    Sim.Metrics.mean_system_latency r.metrics
  in
  let w1 = latency 1 and w3 = latency 3 in
  (* Per attempt s=3 costs 4 steps vs 2 (scan + CAS), and more
     processes sit mid-scan, so the ratio lands above 3; O(s sqrt n)
     only promises linearity in s up to constants. *)
  Alcotest.(check bool)
    (Printf.sprintf "W(s=3)=%.2f between 2x and 4.5x W(s=1)=%.2f" w3 w1)
    true
    (w3 > 2. *. w1 && w3 < 4.5 *. w1)

let test_preamble_shifts_latency_theorem4 () =
  (* Adding q preamble steps adds ~q to the system latency. *)
  let n = 8 in
  let latency q =
    let p = Scu.Scu_pattern.make ~n ~q ~s:1 in
    let r =
      run ~seed:(900 + q) ~scheduler:uniform ~n ~stop:(Steps 800_000) p.spec
    in
    Sim.Metrics.mean_system_latency r.metrics
  in
  let w0 = latency 0 and w10 = latency 10 in
  within ~tol:0.15 "q adds to latency" (w0 +. 10.) w10

let test_theorem3_maximal_progress_under_theta () =
  (* A bounded lock-free algorithm under a theta-fair adversary:
     every process completes operations (maximal progress), and the
     victim's throughput grows with theta. *)
  let n = 4 in
  let victim_done theta =
    let c = Scu.Counter.make ~n in
    let sched =
      Sched.Scheduler.with_weak_fairness ~theta (Sched.Scheduler.starver ~victim:0)
    in
    let r = run ~seed:5 ~scheduler:sched ~n ~stop:(Steps 300_000) c.spec in
    Sim.Metrics.completions_of r.metrics 0
  in
  let slow = victim_done 0.01 and fast = victim_done 0.2 in
  Alcotest.(check bool)
    (Printf.sprintf "victim completes under theta=0.01 (%d ops)" slow)
    true (slow > 0);
  Alcotest.(check bool)
    (Printf.sprintf "more theta, more progress (%d < %d)" slow fast)
    true (slow < fast)

let test_crash_latency_tracks_survivors_corollary2 () =
  (* Corollary 2: with only k correct processes the latency is
     O(q + s sqrt k).  Crash half the processes at t=0 and compare
     against an honest k-process run. *)
  let n = 16 and k = 8 in
  let c1 = Scu.Counter.make ~n in
  let fault_plan =
    Sched.Fault_plan.of_crash_plan
      (Sched.Crash_plan.of_list (List.init (n - k) (fun i -> (0, k + i))))
  in
  let r1 =
    run ~seed:3 ~fault_plan ~scheduler:uniform ~n ~stop:(Steps 600_000) c1.spec
  in
  let c2 = Scu.Counter.make ~n:k in
  let r2 =
    run ~seed:4 ~scheduler:uniform ~n:k ~stop:(Steps 600_000) c2.spec
  in
  within ~tol:0.05 "crashed-n run behaves like k-process run"
    (Sim.Metrics.mean_system_latency r2.metrics)
    (Sim.Metrics.mean_system_latency r1.metrics)

let test_quantum_scheduler_keeps_long_run_shape () =
  (* Ablation: an OS-like bursty scheduler with small quantum keeps the
     same long-run completion-rate ordering as uniform (robustness of
     the model's predictions), though constants shift. *)
  let n = 8 in
  let rate sched =
    let c = Scu.Counter.make ~n in
    let r = run ~seed:8 ~scheduler:sched ~n ~stop:(Steps 400_000) c.spec in
    Sim.Metrics.completion_rate r.metrics
  in
  let uni = rate uniform in
  let quantum = rate (Sched.Scheduler.quantum ~length:4) in
  (* Under quantum scheduling a process runs solo within its slice, so
     retries are rarer and the rate is at least the uniform one. *)
  Alcotest.(check bool)
    (Printf.sprintf "quantum rate %.4f >= 0.8 x uniform %.4f" quantum uni)
    true
    (quantum >= 0.8 *. uni)

let test_zipf_breaks_fairness () =
  (* Ablation: under a skewed scheduler the individual latencies are no
     longer equal (Lemma 7 needs uniformity). *)
  let n = 6 in
  let c = Scu.Counter.make ~n in
  let r =
    run ~seed:9
      ~scheduler:(Sched.Scheduler.zipf ~n ~alpha:1.5)
      ~n ~stop:(Steps 600_000) c.spec
  in
  let w0 = Sim.Metrics.mean_individual_latency r.metrics 0 in
  let w5 = Sim.Metrics.mean_individual_latency r.metrics (n - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "favored p0 (%.1f) much faster than p5 (%.1f)" w0 w5)
    true
    (w5 > 3. *. w0)

let test_seed_robustness () =
  (* The headline number (W at n=8) must be stable across seeds: the
     runs are long enough that seed-to-seed spread is ~1%. *)
  let ws =
    List.map
      (fun seed ->
        let c = Scu.Counter.make ~n:8 in
        let r = run ~seed ~scheduler:uniform ~n:8 ~stop:(Steps 400_000) c.spec in
        Sim.Metrics.mean_system_latency r.metrics)
      [ 1; 2; 3; 4; 5 ]
  in
  let s = Stats.Summary.of_array (Array.of_list ws) in
  Alcotest.(check bool)
    (Printf.sprintf "spread small (mean %.3f, sd %.4f)" (Stats.Summary.mean s)
       (Stats.Summary.stddev s))
    true
    (Stats.Summary.stddev s /. Stats.Summary.mean s < 0.01)

let test_game_chain_sim_triangle () =
  (* Three independent computations of W(8): exact chain, ball game,
     full simulator.  All must agree. *)
  let n = 8 in
  let exact = Chains.Scu_chain.System.system_latency ~n in
  let game =
    let g = Ballsbins.Game.create ~n in
    Ballsbins.Game.mean_phase_length g ~rng:(Stats.Rng.create ~seed:12) ~phases:80_000
  in
  let sim =
    let c = Scu.Counter.make ~n in
    let r = run ~seed:13 ~scheduler:uniform ~n ~stop:(Steps 800_000) c.spec in
    Sim.Metrics.mean_system_latency r.metrics
  in
  within ~tol:0.03 "game vs chain" exact game;
  within ~tol:0.03 "sim vs chain" exact sim

let () =
  Alcotest.run "integration"
    [
      ( "sim = chain",
        [
          Alcotest.test_case "counter latency (§6.1)" `Slow test_counter_sim_matches_chain;
          Alcotest.test_case "fairness (Lemma 7)" `Slow test_fairness_lemma7_in_simulation;
          Alcotest.test_case "parallel code (Lemma 11)" `Slow
            test_parallel_code_lemma11_in_simulation;
          Alcotest.test_case "aug counter (Lemma 12)" `Slow
            test_aug_counter_matches_z_recurrence;
          Alcotest.test_case "triangle: game = chain = sim" `Slow
            test_game_chain_sim_triangle;
          Alcotest.test_case "seed robustness" `Slow test_seed_robustness;
        ] );
      ( "theorem 4 shape",
        [
          Alcotest.test_case "scan steps scale" `Slow test_scan_steps_scale_theorem4;
          Alcotest.test_case "preamble adds q" `Slow test_preamble_shifts_latency_theorem4;
        ] );
      ( "progress",
        [
          Alcotest.test_case "theta => maximal progress (Thm 3)" `Slow
            test_theorem3_maximal_progress_under_theta;
          Alcotest.test_case "crashes: k survivors (Cor 2)" `Slow
            test_crash_latency_tracks_survivors_corollary2;
        ] );
      ( "scheduler ablations",
        [
          Alcotest.test_case "quantum keeps shape" `Slow
            test_quantum_scheduler_keeps_long_run_shape;
          Alcotest.test_case "zipf breaks fairness" `Slow test_zipf_breaks_fairness;
        ] );
    ]
