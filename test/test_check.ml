(* Tests for lib/check: the schedule-replay substrate, the bounded
   exhaustive explorer (which must catch every seeded bug and certify
   every stock structure clean), the fuzzer with shrinking, and the
   statistical conformance gates. *)

open Core

let find = Scu.Checkable.find

let run_schedule ?mix_seed structure ~n ~ops ~tail sched =
  Check.Schedule.run ?mix_seed ~structure:(find structure) ~n ~ops ~tail sched

(* -- Schedule replay substrate -------------------------------------- *)

let test_any_array_is_a_schedule () =
  (* Entries naming dead/out-of-range processes normalize to the next
     runnable process; replaying the effective schedule is a fixed
     point. *)
  let sched = [| 7; -3; 0; 99; 1; 1; 42; 0; -1; 5 |] in
  let out = run_schedule "cas-counter" ~n:2 ~ops:2 ~tail:Stop sched in
  Array.iter
    (fun p -> Alcotest.(check bool) "pick in range" true (p >= 0 && p < 2))
    out.Check.Schedule.executed;
  let again =
    run_schedule "cas-counter" ~n:2 ~ops:2 ~tail:Stop out.Check.Schedule.executed
  in
  Alcotest.(check (array int))
    "effective schedule is a fixed point" out.Check.Schedule.executed
    again.Check.Schedule.executed;
  Alcotest.(check string)
    "same verdict"
    (Check.Schedule.verdict_to_string out.Check.Schedule.verdict)
    (Check.Schedule.verdict_to_string again.Check.Schedule.verdict)

let test_round_robin_tail_completes () =
  let out = run_schedule "treiber" ~n:2 ~ops:2 ~tail:Round_robin [||] in
  Alcotest.(check bool) "terminal" true out.Check.Schedule.terminal;
  Alcotest.(check (array int))
    "all ops completed" [| 2; 2 |] out.Check.Schedule.completed;
  Alcotest.(check bool)
    "linearizable" false
    (Check.Schedule.is_bad out.Check.Schedule.verdict)

let test_62_op_boundary () =
  (* n * ops = 62 is the checker's bitmask limit: accepted end-to-end;
     63 is rejected up front. *)
  let out = run_schedule "faa-counter" ~n:1 ~ops:62 ~tail:Round_robin [||] in
  Alcotest.(check bool)
    "62 sequential ops check out" false
    (Check.Schedule.is_bad out.Check.Schedule.verdict);
  Alcotest.check_raises "63 ops rejected"
    (Invalid_argument
       "Schedule.run: n * ops must be <= 62 (linearizability checker limit)")
    (fun () -> ignore (run_schedule "faa-counter" ~n:1 ~ops:63 ~tail:Stop [||]))

let test_crash_never_false_alarms () =
  (* Crashing a process mid-operation leaves an in-flight op; the
     sound partial-history rule must never call that a violation. *)
  let fault_plan =
    Sched.Fault_plan.of_crash_plan (Sched.Crash_plan.of_list [ (3, 1) ])
  in
  let out =
    Check.Schedule.run ~fault_plan ~structure:(find "cas-counter") ~n:2 ~ops:2
      ~tail:Round_robin [||]
  in
  Alcotest.(check bool)
    "no false alarm under crash" false
    (Check.Schedule.is_bad out.Check.Schedule.verdict)

let test_ddmin_minimizes () =
  (* ddmin over a pure predicate: keep arrays containing >= 3 sevens.
     The greedy minimum is exactly three sevens. *)
  let fails a = Array.fold_left (fun n x -> if x = 7 then n + 1 else n) 0 a >= 3 in
  let input = [| 1; 7; 2; 7; 3; 7; 4; 7; 5; 7 |] in
  let out = Check.Schedule.ddmin ~fails input in
  Alcotest.(check bool) "still fails" true (fails out);
  Alcotest.(check (array int)) "1-minimal" [| 7; 7; 7 |] out

(* -- Explorer: seeded bugs found, stock certified ------------------- *)

let explore ?config name ~n ~ops =
  Check.Explore.explore ?config ~structure:(find name) ~n ~ops ()

let check_bug_found name ~n ~ops () =
  let r = explore name ~n ~ops in
  Alcotest.(check bool)
    (name ^ " violations found") true
    (r.Check.Explore.violations <> []);
  (* Every reported schedule must replay to a bad verdict. *)
  List.iter
    (fun (v : Check.Explore.violation) ->
      let out = run_schedule name ~n ~ops ~tail:Stop v.schedule in
      Alcotest.(check bool)
        "violation replays" true
        (Check.Schedule.is_bad out.Check.Schedule.verdict))
    r.Check.Explore.violations

let check_stock_clean name ~n ~ops () =
  let r = explore name ~n ~ops in
  Alcotest.(check int)
    (name ^ " no violations") 0
    (List.length r.Check.Explore.violations);
  Alcotest.(check bool) (name ^ " exhausted") true r.Check.Explore.exhausted

let test_pruning_is_sound () =
  (* The DPOR-lite prunes must not change the verdict: with pruning
     disabled the explorer visits more nodes but finds the same
     violations-or-not answer. *)
  let bare =
    { Check.Explore.default with prune_states = false; sleep_sets = false }
  in
  let fast = explore "counter-nocas" ~n:2 ~ops:2 in
  let slow = explore ~config:bare "counter-nocas" ~n:2 ~ops:2 in
  Alcotest.(check bool) "pruned finds bug" true (fast.Check.Explore.violations <> []);
  Alcotest.(check bool) "unpruned finds bug" true (slow.Check.Explore.violations <> []);
  Alcotest.(check bool)
    "pruning saves work" true
    (fast.Check.Explore.nodes < slow.Check.Explore.nodes);
  let clean = explore "cas-counter" ~n:2 ~ops:2 in
  let clean_bare = explore ~config:bare "cas-counter" ~n:2 ~ops:2 in
  Alcotest.(check int)
    "clean stays clean unpruned" 0
    (List.length clean_bare.Check.Explore.violations);
  Alcotest.(check int)
    "clean stays clean pruned" 0
    (List.length clean.Check.Explore.violations)

(* -- Fuzzer --------------------------------------------------------- *)

let fuzz ?config name ~n ~ops =
  Check.Fuzz.fuzz ?config ~structure:(find name) ~n ~ops ()

let fuzz_config =
  { Check.Fuzz.default with trials = 150; seed = Test_util.seed }

let test_fuzz_catches_seeded_bug () =
  let r = fuzz ~config:fuzz_config "treiber-nocas" ~n:2 ~ops:2 in
  Alcotest.(check bool)
    (Printf.sprintf "failures found (REPRO_TEST_SEED=%d)" Test_util.seed)
    true
    (r.Check.Fuzz.failures <> []);
  List.iter
    (fun (f : Check.Fuzz.failure) ->
      (* A qcheck failure was judged under the deterministic
         round-robin tail; scheduler-trace failures under Stop. *)
      let tail =
        if f.source = "qcheck" then Check.Schedule.Round_robin
        else Check.Schedule.Stop
      in
      let out = run_schedule ?mix_seed:f.mix_seed "treiber-nocas" ~n:2 ~ops:2 ~tail f.schedule in
      Alcotest.(check bool)
        ("minimal schedule replays: " ^ f.replay)
        true
        (Check.Schedule.is_bad out.Check.Schedule.verdict))
    r.Check.Fuzz.failures

let test_fuzz_stock_clean () =
  List.iter
    (fun name ->
      let r = fuzz ~config:fuzz_config name ~n:3 ~ops:2 in
      Alcotest.(check int)
        (Printf.sprintf "%s clean (REPRO_TEST_SEED=%d)" name Test_util.seed)
        0
        (List.length r.Check.Fuzz.failures))
    [
      "cas-counter";
      "faa-counter";
      "treiber";
      "msqueue";
      "elimination-stack";
      "waitfree-counter";
    ]

(* -- Chaos fuzzing (fault plans) ------------------------------------ *)

let chaos_config = { Check.Chaos.default with trials = 40; seed = Test_util.seed }

let test_chaos_catches_seeded_bug () =
  let r =
    Check.Chaos.run ~config:chaos_config ~spec:Check.Chaos.default_spec
      ~structure:(find "counter-nocas") ~n:3 ~ops:2 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "failures found (REPRO_TEST_SEED=%d)" Test_util.seed)
    true
    (r.Check.Chaos.failures <> []);
  (* Every shrunk failure replays byte-for-byte from its
     (schedule, fault plan, mix seed) triple. *)
  List.iter
    (fun (f : Check.Chaos.failure) ->
      let out =
        Check.Schedule.run ~fault_plan:f.faults ~mix_seed:f.mix_seed
          ~structure:(find "counter-nocas") ~n:3 ~ops:2 ~tail:Round_robin
          f.schedule
      in
      Alcotest.(check bool)
        ("minimal failure replays: " ^ f.replay)
        true
        (Check.Schedule.is_bad out.Check.Schedule.verdict);
      Alcotest.(check (array int))
        "effective schedule is a fixed point" f.schedule
        out.Check.Schedule.executed)
    r.Check.Chaos.failures

let test_chaos_stock_clean () =
  (* Crash–recovery, stalls, and spurious CAS failure must not produce
     false alarms on the correct structures — recovery-safe re-entry
     plus the mark-aware partial-history rule. *)
  List.iter
    (fun name ->
      let r =
        Check.Chaos.run ~config:chaos_config ~spec:Check.Chaos.default_spec
          ~structure:(find name) ~n:3 ~ops:2 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "%s clean under chaos (REPRO_TEST_SEED=%d)" name
           Test_util.seed)
        0
        (List.length r.Check.Chaos.failures))
    [
      "cas-counter";
      "faa-counter";
      "treiber";
      "msqueue";
      "elimination-stack";
      "waitfree-counter";
    ]

let test_chaos_elimination_recovery_heavy () =
  (* The elimination stack's crash-recovery settlement (a parked push
     withdrawn or completed by [recover_push]) and its spurious-CAS
     robust reclaim only fire under faults; drive them hard with rates
     well above the default drill.  Any double-push, lost value, or
     phantom pop would surface as a linearizability failure. *)
  let spec =
    {
      Sched.Fault_plan.base = Sched.Fault_plan.none;
      rates =
        {
          Sched.Fault_plan.crash = 0.08;
          recover = 0.3;
          stall = 0.02;
          stall_len = 4;
          casfail = 0.25;
        };
    }
  in
  let r =
    Check.Chaos.run
      ~config:{ chaos_config with trials = 120 }
      ~spec ~structure:(find "elimination-stack") ~n:3 ~ops:2 ()
  in
  Alcotest.(check int)
    (Printf.sprintf "clean under heavy faults (REPRO_TEST_SEED=%d)"
       Test_util.seed)
    0
    (List.length r.Check.Chaos.failures)

let test_chaos_deterministic () =
  let run () =
    let r =
      Check.Chaos.run ~config:chaos_config ~spec:Check.Chaos.default_spec
        ~structure:(find "msqueue-nocas") ~n:3 ~ops:2 ()
    in
    List.map
      (fun (f : Check.Chaos.failure) -> (f.replay, f.fault_spec, f.mix_seed))
      r.Check.Chaos.failures
  in
  Alcotest.(check bool) "same failures both runs" true (run () = run ())

let test_fuzz_faults_flag_adds_chaos_source () =
  let config = { fuzz_config with Check.Fuzz.trials = 30; faults = true } in
  let r = fuzz ~config "counter-nocas" ~n:3 ~ops:2 in
  Alcotest.(check bool)
    "chaos source contributes failures" true
    (List.exists (fun (f : Check.Fuzz.failure) -> f.source = "chaos") r.failures)

(* -- Conformance gates ---------------------------------------------- *)

let test_conform_smoke () =
  let r = Check.Conform.run ~seed:0 () in
  List.iter
    (fun (g : Check.Conform.gate) ->
      Alcotest.(check bool) (g.name ^ ": " ^ g.detail) true g.passed)
    r.Check.Conform.gates

let () =
  Alcotest.run "check"
    [
      ( "schedule",
        [
          Alcotest.test_case "any array is a schedule" `Quick
            test_any_array_is_a_schedule;
          Alcotest.test_case "round-robin tail completes" `Quick
            test_round_robin_tail_completes;
          Alcotest.test_case "62-op boundary" `Quick test_62_op_boundary;
          Alcotest.test_case "crash soundness" `Quick test_crash_never_false_alarms;
          Alcotest.test_case "ddmin" `Quick test_ddmin_minimizes;
        ] );
      ( "explore",
        [
          Alcotest.test_case "counter-nocas bug found" `Quick
            (check_bug_found "counter-nocas" ~n:2 ~ops:2);
          Alcotest.test_case "treiber-nocas bug found" `Quick
            (check_bug_found "treiber-nocas" ~n:2 ~ops:2);
          Alcotest.test_case "msqueue-nocas bug found" `Quick
            (check_bug_found "msqueue-nocas" ~n:4 ~ops:1);
          Alcotest.test_case "cas-counter certified" `Quick
            (check_stock_clean "cas-counter" ~n:3 ~ops:2);
          Alcotest.test_case "faa-counter certified" `Quick
            (check_stock_clean "faa-counter" ~n:3 ~ops:2);
          Alcotest.test_case "treiber certified" `Quick
            (check_stock_clean "treiber" ~n:2 ~ops:2);
          Alcotest.test_case "msqueue certified" `Quick
            (check_stock_clean "msqueue" ~n:4 ~ops:1);
          Alcotest.test_case "elimination-stack certified" `Quick
            (check_stock_clean "elimination-stack" ~n:2 ~ops:2);
          Alcotest.test_case "waitfree-counter certified" `Quick
            (check_stock_clean "waitfree-counter" ~n:2 ~ops:2);
          Alcotest.test_case "pruning soundness" `Quick test_pruning_is_sound;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "seeded bug caught" `Quick test_fuzz_catches_seeded_bug;
          Alcotest.test_case "stock clean" `Quick test_fuzz_stock_clean;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "seeded bug caught under faults" `Quick
            test_chaos_catches_seeded_bug;
          Alcotest.test_case "stock clean under faults" `Quick test_chaos_stock_clean;
          Alcotest.test_case "elimination recovery under heavy faults" `Quick
            test_chaos_elimination_recovery_heavy;
          Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
          Alcotest.test_case "fuzz --faults adds chaos source" `Quick
            test_fuzz_faults_flag_adds_chaos_source;
        ] );
      ("conform", [ Alcotest.test_case "smoke gates" `Quick test_conform_smoke ]);
    ]
