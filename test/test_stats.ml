(* Unit and property tests for the statistics substrate. *)

open Core

let prop name ?(count = 200) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

(* -- Rng ----------------------------------------------------------- *)

let test_rng_reproducible () =
  let a = Stats.Rng.create ~seed:7 and b = Stats.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Stats.Rng.create ~seed:7 and b = Stats.Rng.create ~seed:8 in
  Alcotest.(check bool) "different streams" true
    (Stats.Rng.bits64 a <> Stats.Rng.bits64 b)

let test_rng_int_range () =
  let g = Stats.Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Stats.Rng.int g 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Stats.Rng.int g 0))

let test_rng_int_uniform () =
  let g = Stats.Rng.create ~seed:2 in
  let counts = Array.make 10 0 in
  let trials = 200_000 in
  for _ = 1 to trials do
    let v = Stats.Rng.int g 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "chi-square uniformity" true (Stats.Chi_square.test_uniform counts)

let test_rng_float_range () =
  let g = Stats.Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Stats.Rng.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_split_independent () =
  let g = Stats.Rng.create ~seed:4 in
  let a = Stats.Rng.split g in
  let b = Stats.Rng.split g in
  Alcotest.(check bool) "children differ" true
    (Stats.Rng.bits64 a <> Stats.Rng.bits64 b)

let test_rng_weighted () =
  let g = Stats.Rng.create ~seed:5 in
  let w = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let i = Stats.Rng.pick_weighted g w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never chosen" 0 counts.(1);
  let share2 = float_of_int counts.(2) /. float_of_int trials in
  Alcotest.(check bool) "weight-3 share ~0.75" true (Float.abs (share2 -. 0.75) < 0.01)

let test_rng_geometric_mean () =
  let g = Stats.Rng.create ~seed:6 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (float_of_int (Stats.Rng.geometric g ~p:0.25))
  done;
  (* Mean of geometric(p) = 1/p = 4. *)
  Alcotest.(check bool) "geometric mean ~4" true
    (Float.abs (Stats.Summary.mean s -. 4.) < 0.1)

let test_rng_perm () =
  let g = Stats.Rng.create ~seed:8 in
  let p = Stats.Rng.perm g 20 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true (sorted = Array.init 20 (fun i -> i))

let prop_rng_int_in_bounds =
  prop "rng int always within bounds"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 10000))
    (fun (bound, seed) ->
      let g = Stats.Rng.create ~seed in
      let v = Stats.Rng.int g bound in
      v >= 0 && v < bound)

(* -- Summary ------------------------------------------------------- *)

let test_summary_basic () =
  let s = Stats.Summary.of_array [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" (5. /. 3.) (Stats.Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 10. (Stats.Summary.total s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Stats.Summary.mean s))

let prop_summary_merge =
  prop "merge equals concatenation"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 50) (float_range (-100.) 100.))
        (list_size (int_range 1 50) (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let a = Stats.Summary.of_array (Array.of_list xs) in
      let b = Stats.Summary.of_array (Array.of_list ys) in
      let merged = Stats.Summary.merge a b in
      let whole = Stats.Summary.of_array (Array.of_list (xs @ ys)) in
      let close u v = Float.abs (u -. v) < 1e-6 *. (1. +. Float.abs v) in
      Stats.Summary.count merged = Stats.Summary.count whole
      && close (Stats.Summary.mean merged) (Stats.Summary.mean whole)
      && (List.length xs + List.length ys < 2
         || close (Stats.Summary.variance merged) (Stats.Summary.variance whole)))

(* -- Histogram ----------------------------------------------------- *)

let test_histogram_bins () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.; 1.9; 2.; 5.; 9.99; -1.; 10.; 42. ];
  Alcotest.(check (list int))
    "counts" [ 2; 1; 1; 0; 1 ]
    (Array.to_list (Stats.Histogram.counts h));
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h);
  Alcotest.(check int) "total" 8 (Stats.Histogram.total h)

let prop_histogram_total =
  prop "every observation lands somewhere"
    QCheck2.Gen.(list_size (int_range 0 200) (float_range (-50.) 50.))
    (fun xs ->
      let h = Stats.Histogram.create ~lo:(-10.) ~hi:10. ~bins:7 in
      List.iter (Stats.Histogram.add h) xs;
      Stats.Histogram.total h = List.length xs)

(* -- Ecdf ---------------------------------------------------------- *)

let test_ecdf_quantiles () =
  let e = Stats.Ecdf.of_array [| 3.; 1.; 2.; 4. |] in
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Ecdf.quantile e 0.);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.Ecdf.quantile e 1.);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.Ecdf.median e);
  Alcotest.(check (float 1e-9)) "cdf mid" 0.5 (Stats.Ecdf.cdf e 2.5);
  Alcotest.(check (float 1e-9)) "cdf below" 0. (Stats.Ecdf.cdf e 0.5);
  Alcotest.(check (float 1e-9)) "cdf above" 1. (Stats.Ecdf.cdf e 9.)

let test_ecdf_rejects_nan () =
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Ecdf.of_array: NaN in sample") (fun () ->
      ignore (Stats.Ecdf.of_array [| 1.; nan; 3. |]))

let test_ecdf_negative_zero_order () =
  (* Float.compare orders -0. before 0.; polymorphic compare agreed,
     but this pins the behaviour now that the comparator is explicit. *)
  let e = Stats.Ecdf.of_array [| 0.; -0.; 1. |] in
  Alcotest.(check (float 0.)) "min is -0." (-0.) (Stats.Ecdf.minimum e);
  Alcotest.(check (float 1e-9)) "max" 1. (Stats.Ecdf.maximum e)

let prop_ecdf_monotone =
  prop "quantile is monotone"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 100) (float_range (-100.) 100.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (p1, p2)) ->
      let e = Stats.Ecdf.of_array (Array.of_list xs) in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.Ecdf.quantile e lo <= Stats.Ecdf.quantile e hi +. 1e-12)

(* -- Regression ---------------------------------------------------- *)

let test_regression_exact_line () =
  let pts = [ (1., 5.); (2., 7.); (3., 9.); (4., 11.) ] in
  let fit = Stats.Regression.linear pts in
  Alcotest.(check (float 1e-9)) "slope" 2. fit.slope;
  Alcotest.(check (float 1e-9)) "intercept" 3. fit.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1. fit.r2

let test_regression_power_law () =
  (* y = 3 * x^0.5 *)
  let pts =
    List.init 10 (fun i ->
        let x = float_of_int (i + 1) in
        (x, 3. *. sqrt x))
  in
  let fit = Stats.Regression.power_law pts in
  Alcotest.(check (float 1e-9)) "exponent" 0.5 fit.slope;
  Alcotest.(check (float 1e-6)) "prefactor" 3. (exp fit.intercept)

let test_scale_to_first () =
  let model = sqrt in
  let scaled = Stats.Regression.scale_to_first ~model [ (4., 10.); (9., 0.) ] in
  Alcotest.(check (float 1e-9)) "passes through first point" 10. (scaled 4.);
  Alcotest.(check (float 1e-9)) "scales elsewhere" 15. (scaled 9.)

(* -- Chi-square ---------------------------------------------------- *)

let test_chi_square_detects_bias () =
  let uniform = [| 1000; 1010; 990; 1005; 995 |] in
  let biased = [| 2500; 500; 500; 500; 1000 |] in
  Alcotest.(check bool) "accepts uniform" true (Stats.Chi_square.test_uniform uniform);
  Alcotest.(check bool) "rejects biased" false (Stats.Chi_square.test_uniform biased)

let test_chi_square_critical_values () =
  (* Known value: chi2(0.05, df=10) = 18.31. *)
  let v = Stats.Chi_square.critical_value ~df:10 ~alpha:0.05 in
  Alcotest.(check bool) "df=10 alpha=.05 ~18.31" true (Float.abs (v -. 18.31) < 0.2)

(* -- Table --------------------------------------------------------- *)

let test_table_render () =
  let t = Stats.Table.create [ "n"; "W" ] in
  Stats.Table.add_row t [ "2"; "1.5" ];
  Stats.Table.add_floats t ~label:"4" [ 2.25 ];
  let s = Stats.Table.to_string t in
  Alcotest.(check bool) "mentions header" true
    (String.length s > 0 && String.index_opt s 'W' <> None && String.index_opt s '4' <> None);
  let csv = Stats.Table.to_csv t in
  Alcotest.(check bool) "csv has rows" true
    (List.length (String.split_on_char '\n' csv) >= 3)

let test_table_rejects_wide_row () =
  let t = Stats.Table.create [ "a" ] in
  Alcotest.check_raises "wide row" (Invalid_argument "Table.add_row: row wider than header")
    (fun () -> Stats.Table.add_row t [ "1"; "2" ])

let test_rng_copy_identical () =
  let g = Stats.Rng.create ~seed:33 in
  ignore (Stats.Rng.bits64 g);
  let h = Stats.Rng.copy g in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy tracks original" (Stats.Rng.bits64 g) (Stats.Rng.bits64 h)
  done

let test_rng_exponential_mean () =
  let g = Stats.Rng.create ~seed:34 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Stats.Rng.exponential g ~mean:3.)
  done;
  Alcotest.(check bool) "exponential mean ~3" true
    (Float.abs (Stats.Summary.mean s -. 3.) < 0.1)

let test_table_pads_short_rows () =
  let t = Stats.Table.create [ "a"; "b"; "c" ] in
  Stats.Table.add_row t [ "1" ];
  let csv = Stats.Table.to_csv t in
  Alcotest.(check bool) "padded" true
    (List.exists (fun line -> line = "1,,") (String.split_on_char '\n' csv))

let test_table_csv_quoting () =
  let t = Stats.Table.create [ "label"; "value" ] in
  Stats.Table.add_row t [ "plain"; "1" ];
  Stats.Table.add_row t [ "a,b"; "with \"quotes\"" ];
  Stats.Table.add_row t [ "line\nbreak"; "cr\rhere" ];
  let lines = String.split_on_char '\n' (Stats.Table.to_csv t) in
  Alcotest.(check bool) "plain cells unquoted" true (List.mem "plain,1" lines);
  Alcotest.(check bool)
    "comma and quote cells escaped per RFC 4180" true
    (List.mem "\"a,b\",\"with \"\"quotes\"\"\"" lines);
  (* The embedded newline splits the physical line but stays inside one
     quoted field. *)
  Alcotest.(check bool) "newline cell opens quoted field" true
    (List.mem "\"line" lines);
  Alcotest.(check bool) "newline cell closes quoted field" true
    (List.mem "break\",\"cr\rhere\"" lines)

let test_histogram_edges () =
  let h = Stats.Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  Alcotest.(check (option int)) "lower edge in bin 0" (Some 0) (Stats.Histogram.bin_of h 0.);
  Alcotest.(check (option int)) "midpoint in bin 1" (Some 1) (Stats.Histogram.bin_of h 0.5);
  Alcotest.(check (option int)) "upper edge excluded" None (Stats.Histogram.bin_of h 1.)

(* -- Hdr ----------------------------------------------------------- *)

(* Everything observable about an Hdr histogram, for whole-value
   equality checks: non-empty buckets plus the exact side-channel. *)
let hdr_obs h =
  let buckets =
    Stats.Hdr.fold_buckets h ~init:[] ~f:(fun acc ~lo ~hi ~count ->
        (lo, hi, count) :: acc)
  in
  ( buckets,
    Stats.Hdr.count h,
    Stats.Hdr.sum h,
    Stats.Hdr.min_value h,
    Stats.Hdr.max_value h )

let test_hdr_exact_small_values () =
  (* Below 2^sub_bits every value has its own unit bucket, so
     quantiles on a known small-value distribution are exact: rank
     ceil(q*n) of the sorted stream. *)
  let h = Stats.Hdr.create () in
  (* 10 ones, 60 fives, 29 thirties, 1 thirty-one: n = 100. *)
  Stats.Hdr.add_n h 1 ~count:10;
  Stats.Hdr.add_n h 5 ~count:60;
  Stats.Hdr.add_n h 30 ~count:29;
  Stats.Hdr.add h 31;
  Alcotest.(check int) "count" 100 (Stats.Hdr.count h);
  Alcotest.(check int) "sum" (10 + 300 + 870 + 31) (Stats.Hdr.sum h);
  Alcotest.(check int) "p50 exact" 5 (Stats.Hdr.p50 h);
  Alcotest.(check int) "p99 exact" 30 (Stats.Hdr.p99 h);
  Alcotest.(check int) "p999 = rank-100 value" 31 (Stats.Hdr.p999 h);
  Alcotest.(check int) "q=0 is min" 1 (Stats.Hdr.quantile h 0.);
  Alcotest.(check int) "q=1 is max" 31 (Stats.Hdr.quantile h 1.);
  Alcotest.(check int) "min" 1 (Stats.Hdr.min_value h);
  Alcotest.(check int) "max" 31 (Stats.Hdr.max_value h)

let test_hdr_bucketed_quantiles () =
  (* Uniform 0..100_000: each quantile lands in a log-linear bucket
     whose lower bound the test states independently via bucket_lo. *)
  let h = Stats.Hdr.create () in
  for v = 0 to 100_000 do
    Stats.Hdr.add h v
  done;
  (* n = 100_001; rank of q is ceil(q*n), value = rank - 1. *)
  let expect q =
    let rank = int_of_float (ceil (q *. 100_001.)) in
    Stats.Hdr.bucket_lo h (rank - 1)
  in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q=%.3f" q)
        (expect q) (Stats.Hdr.quantile h q))
    [ 0.5; 0.9; 0.99; 0.999; 0.9999 ];
  (* The bucket understates the true rank value by < 2^-sub_bits. *)
  for v = 1 to 3_000 do
    let lo = Stats.Hdr.bucket_lo h v in
    Alcotest.(check bool) "relative error < 1/32" true
      (lo <= v && (v < 32 || 32 * (v - lo) < v))
  done

let test_hdr_merge_equals_whole () =
  let whole = Stats.Hdr.create () in
  let parts = Array.init 4 (fun _ -> Stats.Hdr.create ()) in
  let g = Stats.Rng.create ~seed:99 in
  for k = 0 to 9_999 do
    let v = Stats.Rng.int g 1_000_000 in
    Stats.Hdr.add whole v;
    Stats.Hdr.add parts.(k mod 4) v
  done;
  let merged = Array.fold_left Stats.Hdr.merge (Stats.Hdr.create ()) parts in
  Alcotest.(check bool) "merge of shards == single stream" true
    (hdr_obs merged = hdr_obs whole);
  Alcotest.(check int) "same p999" (Stats.Hdr.p999 whole) (Stats.Hdr.p999 merged)

let test_hdr_boundary_values () =
  (* Power-of-two boundaries are where octaves change; p999 must stay
     stable when the mass sits exactly on a bucket edge. *)
  List.iter
    (fun v ->
      (* Single-value stream: the [min, max] clamp makes every
         quantile exact, whatever the bucket resolution. *)
      let h = Stats.Hdr.create () in
      Stats.Hdr.add_n h v ~count:1_000;
      Alcotest.(check int) "single-value p50 exact" v (Stats.Hdr.p50 h);
      Alcotest.(check int) "single-value p999 exact" v (Stats.Hdr.p999 h);
      (* With a low outlier the clamp no longer applies and p999 is
         the bucket lower bound of v — never a neighbouring bucket,
         even right at the octave edge. *)
      let h' = Stats.Hdr.create () in
      Stats.Hdr.add h' 0;
      Stats.Hdr.add_n h' v ~count:10_000;
      Alcotest.(check int) "p999 lands in v's bucket" (Stats.Hdr.bucket_lo h' v)
        (Stats.Hdr.p999 h');
      Alcotest.(check int) "q=1 clamps to max" v (Stats.Hdr.quantile h' 1.))
    [ 31; 32; 33; 63; 64; 65; 1023; 1024; 1025; (1 lsl 40) - 1; 1 lsl 40 ]

let test_hdr_validation () =
  let h = Stats.Hdr.create () in
  Alcotest.check_raises "negative value" (Invalid_argument "Hdr.add: negative value")
    (fun () -> Stats.Hdr.add h (-1));
  Alcotest.check_raises "empty quantile" (Invalid_argument "Hdr.quantile: empty histogram")
    (fun () -> ignore (Stats.Hdr.quantile h 0.5));
  Alcotest.check_raises "sub_bits range"
    (Invalid_argument "Hdr.create: sub_bits must be in [0, 14]") (fun () ->
      ignore (Stats.Hdr.create ~sub_bits:15 ()));
  Alcotest.check_raises "merge sub_bits mismatch"
    (Invalid_argument "Hdr.merge_into: sub_bits mismatch") (fun () ->
      Stats.Hdr.merge_into ~into:(Stats.Hdr.create ~sub_bits:3 ()) (Stats.Hdr.create ()))

let hdr_of_list vs =
  let h = Stats.Hdr.create () in
  List.iter (Stats.Hdr.add h) vs;
  h

let hdr_gen = QCheck2.Gen.(list_size (int_bound 200) (int_bound 2_000_000))

let prop_hdr_merge_commutative =
  prop "hdr: merge commutative" QCheck2.Gen.(pair hdr_gen hdr_gen)
    (fun (xs, ys) ->
      let a = hdr_of_list xs and b = hdr_of_list ys in
      hdr_obs (Stats.Hdr.merge a b) = hdr_obs (Stats.Hdr.merge b a))

let prop_hdr_merge_associative =
  prop "hdr: merge associative" QCheck2.Gen.(triple hdr_gen hdr_gen hdr_gen)
    (fun (xs, ys, zs) ->
      let a = hdr_of_list xs and b = hdr_of_list ys and c = hdr_of_list zs in
      hdr_obs Stats.Hdr.(merge (merge a b) c)
      = hdr_obs Stats.Hdr.(merge a (merge b c)))

let prop_hdr_quantile_monotone_and_bounded =
  prop "hdr: quantiles monotone and within [min, max]"
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 2_000_000))
    (fun vs ->
      let h = hdr_of_list vs in
      let qs = [ 0.; 0.25; 0.5; 0.9; 0.99; 0.999; 1. ] in
      let values = List.map (Stats.Hdr.quantile h) qs in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted values
      && List.for_all
           (fun v -> v >= Stats.Hdr.min_value h && v <= Stats.Hdr.max_value h)
           values)

let prop_hdr_p999_boundary_stable =
  (* Mass at an octave boundary (plus a low outlier so the [min, max]
     clamp cannot hide bucketing): p999 must name v's own bucket and
     stay within one bucket width (< 2^-5 relative) of the true
     value. *)
  prop "hdr: p999 stable at bucket boundaries"
    QCheck2.Gen.(pair (int_range 5 40) (int_range 0 2))
    (fun (bit, jitter) ->
      let v = (1 lsl bit) + jitter - 1 in
      let h = Stats.Hdr.create () in
      Stats.Hdr.add h 0;
      Stats.Hdr.add_n h v ~count:10_000;
      let p = Stats.Hdr.p999 h in
      p = Stats.Hdr.bucket_lo h v && 32 * (v - p) < v + 32)

(* -- Vec ----------------------------------------------------------- *)

let test_vec_growth () =
  let v = Stats.Vec.Int.create ~capacity:1 () in
  for i = 0 to 999 do
    Stats.Vec.Int.push v i
  done;
  Alcotest.(check int) "length" 1000 (Stats.Vec.Int.length v);
  Alcotest.(check int) "get" 500 (Stats.Vec.Int.get v 500);
  Alcotest.(check bool) "to_array" true
    (Stats.Vec.Int.to_array v = Array.init 1000 (fun i -> i))

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "reproducible" `Quick test_rng_reproducible;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int uniform (chi2)" `Quick test_rng_int_uniform;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "weighted pick" `Quick test_rng_weighted;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "perm" `Quick test_rng_perm;
          Alcotest.test_case "copy identical" `Quick test_rng_copy_identical;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          prop_rng_int_in_bounds;
        ] );
      ( "summary",
        [
          Alcotest.test_case "basic moments" `Quick test_summary_basic;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          prop_summary_merge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_bins;
          Alcotest.test_case "edges" `Quick test_histogram_edges;
          prop_histogram_total;
        ] );
      ( "ecdf",
        [
          Alcotest.test_case "quantiles" `Quick test_ecdf_quantiles;
          Alcotest.test_case "rejects NaN" `Quick test_ecdf_rejects_nan;
          Alcotest.test_case "-0./0. ordering" `Quick test_ecdf_negative_zero_order;
          prop_ecdf_monotone;
        ] );
      ( "regression",
        [
          Alcotest.test_case "exact line" `Quick test_regression_exact_line;
          Alcotest.test_case "power law" `Quick test_regression_power_law;
          Alcotest.test_case "scale to first" `Quick test_scale_to_first;
        ] );
      ( "chi-square",
        [
          Alcotest.test_case "detects bias" `Quick test_chi_square_detects_bias;
          Alcotest.test_case "critical values" `Quick test_chi_square_critical_values;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "rejects wide row" `Quick test_table_rejects_wide_row;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "csv quoting" `Quick test_table_csv_quoting;
        ] );
      ( "hdr",
        [
          Alcotest.test_case "exact small values" `Quick test_hdr_exact_small_values;
          Alcotest.test_case "bucketed quantiles" `Quick test_hdr_bucketed_quantiles;
          Alcotest.test_case "merge == whole stream" `Quick test_hdr_merge_equals_whole;
          Alcotest.test_case "octave boundaries" `Quick test_hdr_boundary_values;
          Alcotest.test_case "validation" `Quick test_hdr_validation;
          prop_hdr_merge_commutative;
          prop_hdr_merge_associative;
          prop_hdr_quantile_monotone_and_bounded;
          prop_hdr_p999_boundary_stable;
        ] );
      ("vec", [ Alcotest.test_case "growth" `Quick test_vec_growth ]);
    ]
