(* Tests for the Markov chain library: stationary distributions (two
   independent algorithms must agree), hitting/return time duality
   (Theorem 1), ergodicity checks, and the lifting verifier. *)

open Core

let prop name ?(count = 50) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

(* A simple two-state chain with known stationary distribution:
   P = [[1-a, a], [b, 1-b]], pi = (b, a) / (a+b). *)
let two_state a b =
  Markov.Chain.create ~size:2
    ~row:(fun i -> if i = 0 then [ (0, 1. -. a); (1, a) ] else [ (0, b); (1, 1. -. b) ])
    ()

(* Random walk on a cycle of size k with lazy self-loops. *)
let lazy_cycle k =
  Markov.Chain.create ~size:k
    ~row:(fun i -> [ (i, 0.5); ((i + 1) mod k, 0.25); ((i + k - 1) mod k, 0.25) ])
    ()

let test_validate_good () =
  match Markov.Chain.validate (two_state 0.3 0.6) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid chain: %s" e

let test_validate_bad_sum () =
  (* With the eager check disabled, [validate] still reports. *)
  let bad =
    Markov.Chain.create ~check:false ~size:1 ~row:(fun _ -> [ (0, 0.9) ]) ()
  in
  match Markov.Chain.validate bad with
  | Ok () -> Alcotest.fail "should reject row not summing to 1"
  | Error _ -> ()

(* Regression: constructors used to accept non-stochastic rows
   silently; [create] now validates eagerly unless [~check:false]. *)
let test_create_rejects_bad_sum () =
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Chain.create: state 0: row sums to 0.9 (want 1)")
    (fun () ->
      ignore (Markov.Chain.create ~size:1 ~row:(fun _ -> [ (0, 0.9) ]) ()))

let test_create_rejects_negative () =
  Alcotest.check_raises "negative probability"
    (Invalid_argument "Chain.create: state 0: negative probability -0.5 to 0")
    (fun () ->
      ignore
        (Markov.Chain.create ~size:2
           ~row:(fun _ -> [ (0, -0.5); (1, 1.5) ])
           ()))

let test_create_rejects_out_of_range () =
  Alcotest.check_raises "target out of range"
    (Invalid_argument "Chain.create: state 0: target 5 out of range")
    (fun () ->
      ignore (Markov.Chain.create ~size:2 ~row:(fun _ -> [ (5, 1.) ]) ()))

let test_validate_duplicate () =
  let bad = Markov.Chain.create ~size:2 ~row:(fun _ -> [ (0, 0.5); (0, 0.5) ]) () in
  match Markov.Chain.validate bad with
  | Ok () -> Alcotest.fail "should reject duplicate targets"
  | Error _ -> ()

let test_two_state_stationary () =
  let a = 0.3 and b = 0.6 in
  let chain = two_state a b in
  let expected0 = b /. (a +. b) in
  let by_solve = Markov.Stationary.solve chain in
  let by_power = Markov.Stationary.power_iteration chain in
  Alcotest.(check (float 1e-9)) "solve pi0" expected0 by_solve.(0);
  Alcotest.(check (float 1e-9)) "power pi0" expected0 by_power.(0);
  Alcotest.(check (float 1e-9)) "normalized" 1. (by_solve.(0) +. by_solve.(1))

let test_cycle_stationary_uniform () =
  let chain = lazy_cycle 7 in
  let pi = Markov.Stationary.compute chain in
  Array.iter
    (fun p -> Alcotest.(check (float 1e-9)) "uniform on cycle" (1. /. 7.) p)
    pi

let test_return_time_theorem1 () =
  (* Theorem 1: h_jj = 1 / pi_j, via two independent computations. *)
  let chain = two_state 0.25 0.4 in
  let pi = Markov.Stationary.compute chain in
  for j = 0 to 1 do
    let by_hitting = Markov.Hitting.expected_return_time chain j in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "return time state %d" j)
      (1. /. pi.(j))
      by_hitting
  done

let test_hitting_times_gambler () =
  (* Symmetric walk on 0..4 with absorbing-ish target {0}: classic
     expected hitting times from i are i * (2*4 - i) for reflecting at
     4... instead verify against the linear system directly for a
     small concrete chain. *)
  let chain =
    Markov.Chain.create ~size:3
      ~row:(fun i ->
        match i with
        | 0 -> [ (0, 1.) ]
        | 1 -> [ (0, 0.5); (2, 0.5) ]
        | 2 -> [ (1, 1.) ]
        | _ -> assert false)
      ()
  in
  let h = Markov.Hitting.hitting_times chain ~targets:[ 0 ] in
  (* h1 = 1 + 0.5*h2, h2 = 1 + h1 => h1 = 3? solve: h1 = 1 + .5(1+h1)
     => .5 h1 = 1.5 => h1 = 3, h2 = 4. *)
  Alcotest.(check (float 1e-6)) "h0" 0. h.(0);
  Alcotest.(check (float 1e-6)) "h1" 3. h.(1);
  Alcotest.(check (float 1e-6)) "h2" 4. h.(2)

let test_ergodicity_checks () =
  Alcotest.(check bool) "lazy cycle ergodic" true (Markov.Ergodic.is_ergodic (lazy_cycle 5));
  (* A pure 2-cycle is periodic. *)
  let flip =
    Markov.Chain.create ~size:2 ~row:(fun i -> [ (1 - i, 1.) ]) ()
  in
  Alcotest.(check bool) "2-cycle irreducible" true (Markov.Ergodic.strongly_connected flip);
  Alcotest.(check int) "2-cycle period" 2 (Markov.Ergodic.period flip);
  Alcotest.(check bool) "2-cycle not ergodic" false (Markov.Ergodic.is_ergodic flip);
  (* Disconnected chain. *)
  let discon = Markov.Chain.create ~size:2 ~row:(fun i -> [ (i, 1.) ]) () in
  Alcotest.(check bool) "disconnected" false (Markov.Ergodic.strongly_connected discon)

let test_step_distribution () =
  let chain = two_state 0.5 0.5 in
  let v = Markov.Chain.step_distribution chain [| 1.; 0. |] in
  Alcotest.(check (float 1e-12)) "mass moved" 0.5 v.(1)

let test_sample_path_occupancy () =
  let chain = two_state 0.3 0.6 in
  let rng = Stats.Rng.create ~seed:11 in
  let occ = Markov.Chain.empirical_occupancy chain ~rng ~start:0 ~steps:200_000 in
  let pi = Markov.Stationary.compute chain in
  Alcotest.(check bool) "occupancy ~ stationary" true (Float.abs (occ.(0) -. pi.(0)) < 0.01)

(* A trivially correct lifting: duplicate every state of a base chain.
   Lifted state 2i and 2i+1 both map to i; transitions split evenly. *)
let test_lifting_duplicate () =
  let base = two_state 0.3 0.6 in
  let lifted =
    Markov.Chain.create ~size:4
      ~row:(fun x ->
        let i = x / 2 in
        List.concat_map
          (fun (j, p) -> [ ((2 * j), p /. 2.); ((2 * j) + 1, p /. 2.) ])
          (base.Markov.Chain.row i))
      ()
  in
  let f x = x / 2 in
  let report = Markov.Lifting.verify ~base ~lifted ~f () in
  Alcotest.(check bool) "flow error small" true (report.max_flow_error < 1e-9);
  Alcotest.(check bool) "pi error small" true (report.max_pi_error < 1e-9);
  Alcotest.(check bool) "fibers counted" true (report.fibers = [| 2; 2 |]);
  Alcotest.(check bool) "is_lifting" true
    (Markov.Lifting.is_lifting ~base ~lifted ~f ());
  let pi = Markov.Stationary.compute lifted in
  Alcotest.(check bool) "fiber symmetric" true
    (Markov.Lifting.fiber_symmetric ~lifted ~f ~pi ())

let test_lifting_rejects_wrong_map () =
  let base = two_state 0.3 0.6 in
  let lifted = two_state 0.3 0.6 in
  (* Map both states to state 0: flows cannot match. *)
  let f _ = 0 in
  Alcotest.(check bool) "rejected" false
    (Markov.Lifting.is_lifting ~base ~lifted ~f ())

let prop_power_vs_solve =
  (* On random ergodic 4-state chains, the two stationary algorithms
     agree. *)
  prop "power iteration agrees with solver"
    QCheck2.Gen.(array_size (return 16) (float_range 0.05 1.))
    (fun raw ->
      let row i =
        let weights = Array.sub raw (4 * i) 4 in
        let total = Array.fold_left ( +. ) 0. weights in
        List.init 4 (fun j -> (j, weights.(j) /. total))
      in
      let chain = Markov.Chain.create ~size:4 ~row () in
      let a = Markov.Stationary.solve chain in
      let b = Markov.Stationary.power_iteration chain in
      let ok = ref true in
      for i = 0 to 3 do
        if Float.abs (a.(i) -. b.(i)) > 1e-8 then ok := false
      done;
      !ok)

let prop_stationary_fixed_point =
  prop "pi is a fixed point of P"
    QCheck2.Gen.(array_size (return 9) (float_range 0.05 1.))
    (fun raw ->
      let row i =
        let weights = Array.sub raw (3 * i) 3 in
        let total = Array.fold_left ( +. ) 0. weights in
        List.init 3 (fun j -> (j, weights.(j) /. total))
      in
      let chain = Markov.Chain.create ~size:3 ~row () in
      let pi = Markov.Stationary.compute chain in
      let pi' = Markov.Chain.step_distribution chain pi in
      let ok = ref true in
      for i = 0 to 2 do
        if Float.abs (pi.(i) -. pi'.(i)) > 1e-9 then ok := false
      done;
      !ok)

(* -- Mixing --------------------------------------------------------- *)

let test_tv_distance () =
  Alcotest.(check (float 1e-12)) "identical" 0. (Markov.Mixing.tv_distance [| 0.5; 0.5 |] [| 0.5; 0.5 |]);
  Alcotest.(check (float 1e-12)) "disjoint" 1. (Markov.Mixing.tv_distance [| 1.; 0. |] [| 0.; 1. |]);
  Alcotest.(check (float 1e-12)) "half" 0.5 (Markov.Mixing.tv_distance [| 1.; 0. |] [| 0.5; 0.5 |])

let test_distribution_at () =
  let chain = two_state 0.5 0.5 in
  (* Non-lazy single step from state 0: (0.5, 0.5). *)
  let d = Markov.Mixing.distribution_at ~lazily:false chain ~start:0 ~t:1 in
  Alcotest.(check (float 1e-12)) "one step" 0.5 d.(1);
  (* t = 0 is the point mass. *)
  let d0 = Markov.Mixing.distribution_at chain ~start:1 ~t:0 in
  Alcotest.(check (float 1e-12)) "point mass" 1. d0.(1)

let test_mixing_time_monotone_in_eps () =
  let chain = lazy_cycle 9 in
  let coarse = Markov.Mixing.mixing_time ~eps:0.25 chain ~start:0 in
  let fine = Markov.Mixing.mixing_time ~eps:0.01 chain ~start:0 in
  Alcotest.(check bool)
    (Printf.sprintf "t(0.01)=%d >= t(0.25)=%d" fine coarse)
    true (fine >= coarse);
  (* After the mixing time, TV really is below eps. *)
  let pi = Markov.Stationary.compute chain in
  let d = Markov.Mixing.distribution_at chain ~start:0 ~t:fine in
  Alcotest.(check bool) "TV below target" true (Markov.Mixing.tv_distance d pi <= 0.01)

let test_hitting_unreachable_rejected () =
  (* State 1 is absorbing, so {0} is unreachable from it. *)
  let chain =
    Markov.Chain.create ~size:2
      ~row:(fun i -> if i = 0 then [ (1, 1.) ] else [ (1, 1.) ])
      ()
  in
  Alcotest.check_raises "unreachable target"
    (Invalid_argument "Hitting.hitting_times: target set unreachable from some state")
    (fun () -> ignore (Markov.Hitting.hitting_times chain ~targets:[ 0 ]))

let test_sample_path_validation () =
  let chain = two_state 0.5 0.5 in
  Alcotest.check_raises "bad start" (Invalid_argument "Chain.sample_path: bad start")
    (fun () ->
      ignore
        (Markov.Chain.sample_path chain ~rng:(Stats.Rng.create ~seed:0) ~start:9 ~steps:1))

let test_lazy_cycle_aperiodic () =
  Alcotest.(check int) "self-loops give period 1" 1
    (Markov.Ergodic.period (lazy_cycle 6))

let test_spectral_gap_two_state () =
  (* Two-state chain with a = b = p: eigenvalues 1 and 1 - 2p; the
     lazy chain's second eigenvalue is (1 + (1-2p))/2 = 1 - p, so the
     gap is exactly p. *)
  let p = 0.3 in
  let gap = Markov.Mixing.spectral_gap (two_state p p) in
  Alcotest.(check bool)
    (Printf.sprintf "gap ~ p (got %.4f)" gap)
    true
    (Float.abs (gap -. p) < 1e-6)

let test_spectral_gap_bounds_mixing () =
  (* Relaxation time and mixing time agree within the standard log
     factor. *)
  let chain = lazy_cycle 12 in
  let gap = Markov.Mixing.spectral_gap chain in
  let tmix = Markov.Mixing.mixing_time ~eps:0.25 chain ~start:0 in
  Alcotest.(check bool)
    (Printf.sprintf "1/gap=%.1f vs t_mix=%d compatible" (1. /. gap) tmix)
    true
    (float_of_int tmix >= 0.3 /. gap && float_of_int tmix <= 20. /. gap)

(* -- Sparse / CSR --------------------------------------------------- *)

let test_sparse_roundtrip () =
  let chain = lazy_cycle 7 in
  let sp = Markov.Sparse.of_chain chain in
  Alcotest.(check int) "nnz" 21 (Markov.Sparse.nnz sp);
  for i = 0 to 6 do
    Alcotest.(check bool) "row preserved" true
      (Markov.Sparse.row sp i = chain.Markov.Chain.row i)
  done;
  let back = Markov.Sparse.to_chain sp in
  Alcotest.(check bool) "to_chain row" true
    (back.Markov.Chain.row 3 = chain.Markov.Chain.row 3)

let test_sparse_transpose () =
  let chain = two_state 0.3 0.6 in
  let tr = Markov.Sparse.transpose (Markov.Sparse.of_chain chain) in
  (* Incoming edges of state 1: 0 →(0.3) and 1 →(0.4). *)
  Alcotest.(check bool) "incoming of 1" true
    (List.sort compare (Markov.Sparse.row tr 1) = [ (0, 0.3); (1, 0.4) ])

let test_sparse_stationary_agrees_dense () =
  let chain = two_state 0.3 0.6 in
  let dense = Markov.Stationary.solve chain in
  let pi, stats =
    Markov.Sparse.stationary_stats (Markov.Sparse.of_chain chain)
  in
  Alcotest.(check (float 1e-10)) "pi0" dense.(0) pi.(0);
  Alcotest.(check (float 1e-10)) "pi1" dense.(1) pi.(1);
  Alcotest.(check bool)
    (Printf.sprintf "residual certified (%.3g)" stats.Markov.Sparse.residual)
    true
    (stats.Markov.Sparse.residual <= 1e-12)

let test_sparse_stationary_periodic () =
  (* The period-2 flip chain defeats undamped power iteration;
     Gauss-Seidel needs no laziness trick. *)
  let flip = Markov.Chain.create ~size:2 ~row:(fun i -> [ (1 - i, 1.) ]) () in
  let pi = Markov.Sparse.stationary (Markov.Sparse.of_chain flip) in
  Alcotest.(check (float 1e-12)) "uniform" 0.5 pi.(0)

let test_sparse_power_agrees_stationary () =
  let chain = lazy_cycle 9 in
  let sp = Markov.Sparse.of_chain chain in
  let gs = Markov.Sparse.stationary sp in
  let pw = Markov.Sparse.power_iteration sp in
  for i = 0 to 8 do
    Alcotest.(check (float 1e-9)) "gs = power" gs.(i) pw.(i)
  done

let test_sparse_hitting_agrees_dense () =
  let chain = lazy_cycle 6 in
  let dense = Markov.Hitting.hitting_times chain ~targets:[ 0 ] in
  let sp =
    Markov.Sparse.hitting_times (Markov.Sparse.of_chain chain) ~targets:[ 0 ]
  in
  for i = 0 to 5 do
    Alcotest.(check (float 1e-6)) (Printf.sprintf "h%d" i) dense.(i) sp.(i)
  done

let test_sparse_hitting_unreachable () =
  let chain =
    Markov.Chain.create ~size:2 ~row:(fun _ -> [ (1, 1.) ]) ()
  in
  Alcotest.check_raises "unreachable"
    (Invalid_argument "Sparse.hitting_times: target set unreachable from some state")
    (fun () ->
      ignore
        (Markov.Sparse.hitting_times (Markov.Sparse.of_chain chain)
           ~targets:[ 0 ]))

let test_sparse_of_rows_rejects_bad_sum () =
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Sparse: state 0: row sums to 0.9 (want 1)")
    (fun () ->
      ignore (Markov.Sparse.of_rows ~size:1 [| [ (0, 0.9) ] |]))

let test_sparse_stationary_rejects_absorbing () =
  let rows = [| [ (0, 1.) ]; [ (0, 1.) ] |] in
  Alcotest.check_raises "absorbing"
    (Invalid_argument "Sparse.stationary: absorbing state (chain not irreducible)")
    (fun () ->
      ignore (Markov.Sparse.stationary (Markov.Sparse.of_rows ~size:2 rows)))

(* -- Lumping -------------------------------------------------------- *)

let test_lump_duplicate () =
  (* Lumping the duplicated chain back through x/2 must reproduce the
     base chain's rows exactly. *)
  let base = two_state 0.3 0.6 in
  let lifted =
    Markov.Chain.create ~size:4
      ~row:(fun x ->
        let i = x / 2 in
        List.concat_map
          (fun (j, p) -> [ ((2 * j), p /. 2.); ((2 * j) + 1, p /. 2.) ])
          (base.Markov.Chain.row i))
      ()
  in
  let lumped = Markov.Lifting.lump ~lifted ~f:(fun x -> x / 2) ~base_size:2 () in
  for i = 0 to 1 do
    List.iter2
      (fun (j, p) (j', p') ->
        Alcotest.(check int) "target" j j';
        Alcotest.(check (float 1e-12)) "prob" p p')
      (List.sort compare (base.Markov.Chain.row i))
      (List.sort compare (lumped.Markov.Chain.row i))
  done

let test_lump_rejects_non_lumpable () =
  (* States 0 and 1 share a fiber but collapse to different rows:
     0 sends all mass to fiber 1, 1 only half. *)
  let lifted =
    Markov.Chain.create ~size:3
      ~row:(fun i ->
        match i with
        | 0 -> [ (2, 1.) ]
        | 1 -> [ (1, 0.5); (2, 0.5) ]
        | _ -> [ (0, 1.) ])
      ()
  in
  let f = function 0 | 1 -> 0 | _ -> 1 in
  Alcotest.check_raises "not strongly lumpable"
    (Invalid_argument
       "Lifting.lump: not strongly lumpable: states 0 and 1 (both in fiber 0) \
        collapse to different rows")
    (fun () -> ignore (Markov.Lifting.lump ~lifted ~f ~base_size:2 ()))

let test_mixing_handles_periodic_chain () =
  (* A pure 2-cycle never mixes without laziness; the lazy walk does. *)
  let flip = Markov.Chain.create ~size:2 ~row:(fun i -> [ (1 - i, 1.) ]) () in
  let t = Markov.Mixing.mixing_time ~eps:0.01 flip ~start:0 in
  Alcotest.(check bool) (Printf.sprintf "lazy walk mixes (t=%d)" t) true (t < 100)

let () =
  Alcotest.run "markov"
    [
      ( "chain",
        [
          Alcotest.test_case "validate good" `Quick test_validate_good;
          Alcotest.test_case "validate bad sum" `Quick test_validate_bad_sum;
          Alcotest.test_case "validate duplicate" `Quick test_validate_duplicate;
          Alcotest.test_case "create rejects bad sum" `Quick
            test_create_rejects_bad_sum;
          Alcotest.test_case "create rejects negative" `Quick
            test_create_rejects_negative;
          Alcotest.test_case "create rejects out of range" `Quick
            test_create_rejects_out_of_range;
          Alcotest.test_case "step distribution" `Quick test_step_distribution;
          Alcotest.test_case "sampled occupancy" `Quick test_sample_path_occupancy;
        ] );
      ( "stationary",
        [
          Alcotest.test_case "two-state closed form" `Quick test_two_state_stationary;
          Alcotest.test_case "cycle uniform" `Quick test_cycle_stationary_uniform;
          prop_power_vs_solve;
          prop_stationary_fixed_point;
        ] );
      ( "hitting",
        [
          Alcotest.test_case "return time = 1/pi (Thm 1)" `Quick test_return_time_theorem1;
          Alcotest.test_case "hitting linear system" `Quick test_hitting_times_gambler;
          Alcotest.test_case "unreachable rejected" `Quick test_hitting_unreachable_rejected;
          Alcotest.test_case "sample path validation" `Quick test_sample_path_validation;
        ] );
      ( "ergodic",
        [
          Alcotest.test_case "checks" `Quick test_ergodicity_checks;
          Alcotest.test_case "lazy cycle aperiodic" `Quick test_lazy_cycle_aperiodic;
        ] );
      ( "lifting",
        [
          Alcotest.test_case "duplicate lifting verified" `Quick test_lifting_duplicate;
          Alcotest.test_case "wrong map rejected" `Quick test_lifting_rejects_wrong_map;
          Alcotest.test_case "lump reproduces base" `Quick test_lump_duplicate;
          Alcotest.test_case "lump rejects non-lumpable" `Quick
            test_lump_rejects_non_lumpable;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "csr roundtrip" `Quick test_sparse_roundtrip;
          Alcotest.test_case "transpose" `Quick test_sparse_transpose;
          Alcotest.test_case "stationary agrees with dense" `Quick
            test_sparse_stationary_agrees_dense;
          Alcotest.test_case "stationary on periodic chain" `Quick
            test_sparse_stationary_periodic;
          Alcotest.test_case "power agrees with gauss-seidel" `Quick
            test_sparse_power_agrees_stationary;
          Alcotest.test_case "hitting agrees with dense" `Quick
            test_sparse_hitting_agrees_dense;
          Alcotest.test_case "hitting unreachable rejected" `Quick
            test_sparse_hitting_unreachable;
          Alcotest.test_case "of_rows rejects bad sum" `Quick
            test_sparse_of_rows_rejects_bad_sum;
          Alcotest.test_case "stationary rejects absorbing" `Quick
            test_sparse_stationary_rejects_absorbing;
        ] );
      ( "mixing",
        [
          Alcotest.test_case "tv distance" `Quick test_tv_distance;
          Alcotest.test_case "distribution at t" `Quick test_distribution_at;
          Alcotest.test_case "mixing time monotone" `Quick test_mixing_time_monotone_in_eps;
          Alcotest.test_case "periodic chain (lazy)" `Quick
            test_mixing_handles_periodic_chain;
          Alcotest.test_case "spectral gap exact" `Quick test_spectral_gap_two_state;
          Alcotest.test_case "gap bounds mixing" `Quick test_spectral_gap_bounds_mixing;
        ] );
    ]
