(* Tests for the Domain pool: deterministic result ordering whatever
   the pool size, error propagation, and reuse across batches — the
   properties `repro run -j N` relies on for byte-identical tables. *)

let squares n = List.init n (fun i -> fun () -> i * i)

let test_sequential_order () =
  Pool.with_pool ~size:1 (fun p ->
      Alcotest.(check (list int))
        "size-1 pool returns results in submission order"
        (List.init 40 (fun i -> i * i))
        (Pool.run p (squares 40)))

let test_parallel_order () =
  Pool.with_pool ~size:4 (fun p ->
      Alcotest.(check (list int))
        "size-4 pool returns results in submission order"
        (List.init 100 (fun i -> i * i))
        (Pool.run p (squares 100)))

let test_sizes_agree () =
  (* Jobs with deliberately skewed durations: completion order differs
     from submission order, results must not. *)
  let jobs =
    List.init 16 (fun i ->
        fun () ->
        let spin = if i mod 4 = 0 then 200_000 else 100 in
        let acc = ref i in
        for _ = 1 to spin do
          acc := (!acc * 31) land 0xFFFF
        done;
        (i, !acc))
  in
  let seq = Pool.with_pool ~size:1 (fun p -> Pool.run p jobs) in
  let par = Pool.with_pool ~size:4 (fun p -> Pool.run p jobs) in
  Alcotest.(check bool) "-j1 and -j4 agree" true (seq = par)

let test_map () =
  Pool.with_pool ~size:3 (fun p ->
      Alcotest.(check (list int))
        "map preserves order" [ 2; 4; 6; 8 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2; 3; 4 ]))

let test_multiple_batches () =
  Pool.with_pool ~size:2 (fun p ->
      for k = 1 to 5 do
        Alcotest.(check (list int))
          "batch k" (List.init 10 (fun i -> i + k))
          (Pool.run p (List.init 10 (fun i -> fun () -> i + k)))
      done)

let test_on_done_fires_per_job () =
  Pool.with_pool ~size:2 (fun p ->
      let seen = ref [] in
      let workers = ref [] in
      let _ =
        Pool.run
          ~on_done:(fun ~index ~worker ~waited ~elapsed:_ ->
            seen := index :: !seen;
            workers := worker :: !workers;
            Alcotest.(check bool) "waited >= 0" true (waited >= 0.))
          p (squares 12)
      in
      Alcotest.(check (list int))
        "every index reported exactly once"
        (List.init 12 Fun.id)
        (List.sort compare !seen);
      Alcotest.(check bool)
        "worker ids within pool size" true
        (List.for_all (fun w -> w >= 0 && w < 2) !workers))

let test_metrics_account_all_jobs () =
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun p ->
          let _ = Pool.run p (squares 23) in
          let _ = Pool.run p (squares 10) in
          let m = Pool.metrics p in
          Alcotest.(check int)
            (Printf.sprintf "one stat per worker (size %d)" size)
            size
            (List.length m.Pool.workers);
          Alcotest.(check int)
            (Printf.sprintf "per-worker jobs sum to total (size %d)" size)
            33 m.Pool.jobs_total;
          Alcotest.(check int)
            (Printf.sprintf "jobs_total matches the per-worker sum (size %d)" size)
            m.Pool.jobs_total
            (List.fold_left
               (fun acc (w : Pool.worker_metrics) -> acc + w.jobs)
               0 m.Pool.workers);
          Alcotest.(check bool)
            (Printf.sprintf "busy and wait non-negative (size %d)" size)
            true
            (m.Pool.busy_total >= 0. && m.Pool.queue_wait_total >= 0.
            && List.for_all
                 (fun (w : Pool.worker_metrics) -> w.busy >= 0.)
                 m.Pool.workers)))
    [ 1; 4 ]

exception Boom of int

let test_error_propagates () =
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun p ->
          let jobs =
            List.init 8 (fun i ->
                fun () -> if i = 3 || i = 6 then raise (Boom i) else i)
          in
          Alcotest.check_raises
            (Printf.sprintf "first failure re-raised (size %d)" size)
            (Boom 3)
            (fun () -> ignore (Pool.run p jobs));
          (* The pool survives a failed batch. *)
          Alcotest.(check (list int))
            "pool usable after failure" [ 0; 1; 2 ]
            (Pool.run p (List.init 3 (fun i -> fun () -> i)))))
    [ 1; 4 ]

let test_try_run_outcomes () =
  (* The supervised entry point: per-job Ok/Error in submission order,
     at both the size-1 (caller's domain) and multi-worker paths. *)
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun p ->
          let jobs =
            List.init 8 (fun i ->
                fun () -> if i mod 3 = 0 then raise (Boom i) else i * 10)
          in
          let outcomes = Pool.try_run p jobs in
          Alcotest.(check int)
            (Printf.sprintf "one outcome per job (size %d)" size)
            8 (List.length outcomes);
          List.iteri
            (fun i o ->
              match (o : int Pool.outcome) with
              | Ok v ->
                  Alcotest.(check bool)
                    (Printf.sprintf "job %d should have failed" i)
                    true
                    (i mod 3 <> 0);
                  Alcotest.(check int) "payload" (i * 10) v
              | Error (Boom j, _) -> Alcotest.(check int) "failing index" i j
              | Error (e, _) -> raise e)
            outcomes;
          (* The batch with failures left the pool fully serviceable. *)
          Alcotest.(check (list int))
            (Printf.sprintf "pool serviceable after failures (size %d)" size)
            [ 0; 1; 2; 3 ]
            (Pool.run p (List.init 4 (fun i -> fun () -> i)));
          (* Failures were caught by try_run's own closures, not by the
             worker loop's backstop. *)
          Alcotest.(check int)
            (Printf.sprintf "supervision backstop untouched (size %d)" size)
            0 (Pool.metrics p).Pool.trapped))
    [ 1; 4 ]

let test_try_run_on_done_covers_failures () =
  (* on_done must fire for failed jobs too — the manifest records every
     cell — and a raising on_done must not kill the batch. *)
  List.iter
    (fun size ->
      Pool.with_pool ~size (fun p ->
          let seen = ref [] in
          let jobs =
            List.init 10 (fun i -> fun () -> if i = 4 then raise (Boom i) else i)
          in
          let outcomes =
            Pool.try_run
              ~on_done:(fun ~index ~worker:_ ~waited:_ ~elapsed:_ ->
                seen := index :: !seen;
                if index = 7 then failwith "on_done bug")
              p jobs
          in
          Alcotest.(check (list int))
            (Printf.sprintf "on_done fired for all jobs incl. failed (size %d)"
               size)
            (List.init 10 Fun.id)
            (List.sort compare !seen);
          Alcotest.(check int)
            (Printf.sprintf "all outcomes returned (size %d)" size)
            10 (List.length outcomes);
          Alcotest.(check bool)
            (Printf.sprintf "job 4 is the only Error (size %d)" size)
            true
            (List.for_all2
               (fun i o -> Result.is_error o = (i = 4))
               (List.init 10 Fun.id) outcomes)))
    [ 1; 4 ]

let test_monotonic_now () =
  let a = Pool.monotonic_now () in
  let b = Pool.monotonic_now () in
  Alcotest.(check bool) "monotonic clock never steps back" true (b >= a);
  Unix.sleepf 0.01;
  let c = Pool.monotonic_now () in
  Alcotest.(check bool) "monotonic clock advances across a sleep" true
    (c -. a >= 0.005)

let test_shutdown_idempotent () =
  (* Both execution paths must refuse work after shutdown: the size-1
     path used to skip the liveness check and silently run the jobs. *)
  List.iter
    (fun size ->
      let p = Pool.create ~size () in
      Alcotest.(check int) "size" size (Pool.size p);
      Pool.shutdown p;
      Pool.shutdown p;
      Alcotest.check_raises
        (Printf.sprintf "run after shutdown (size %d)" size)
        (Invalid_argument "Pool.run: pool is shut down") (fun () ->
          ignore (Pool.run p (squares 2))))
    [ 1; 3 ]

let test_invalid_size () =
  Alcotest.check_raises "size 0 rejected"
    (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
      ignore (Pool.create ~size:0 ()))

let test_empty_batch () =
  Pool.with_pool ~size:2 (fun p ->
      Alcotest.(check (list int)) "empty batch" [] (Pool.run p []))

let () =
  Alcotest.run "pool"
    [
      ( "ordering",
        [
          Alcotest.test_case "sequential order" `Quick test_sequential_order;
          Alcotest.test_case "parallel order" `Quick test_parallel_order;
          Alcotest.test_case "j1 = j4 on skewed jobs" `Quick test_sizes_agree;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "batch reuse" `Quick test_multiple_batches;
          Alcotest.test_case "on_done coverage" `Quick test_on_done_fires_per_job;
          Alcotest.test_case "metrics account all jobs" `Quick
            test_metrics_account_all_jobs;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "try_run per-job outcomes" `Quick
            test_try_run_outcomes;
          Alcotest.test_case "on_done covers failures" `Quick
            test_try_run_on_done_covers_failures;
          Alcotest.test_case "monotonic clock" `Quick test_monotonic_now;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "error propagation" `Quick test_error_propagates;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "invalid size" `Quick test_invalid_size;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
        ] );
    ]
