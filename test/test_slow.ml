(* Long-budget checks, attached to the @slow alias (not runtest):
   deeper exhaustive exploration, larger fuzz budgets, and the long
   conformance gates.  Run with `dune build @slow`.

   Self-contained seed plumbing (this stanza does not share modules
   with the fast tests): REPRO_TEST_SEED, default 421, printed on
   failure. *)

let seed =
  match Sys.getenv_opt "REPRO_TEST_SEED" with
  | None | Some "" -> 421
  | Some s -> (
      try int_of_string (String.trim s)
      with _ -> invalid_arg "REPRO_TEST_SEED must be an integer")

let find = Scu.Checkable.find

let deep = { Check.Explore.default with max_nodes = 500_000; max_depth = 96 }

let test_deep_stock_certification () =
  (* Exhaustive interleaving coverage one size up from the fast tier. *)
  List.iter
    (fun (name, n, ops) ->
      let r = Check.Explore.explore ~config:deep ~structure:(find name) ~n ~ops () in
      Alcotest.(check int)
        (Printf.sprintf "%s (n=%d, ops=%d) no violations" name n ops)
        0
        (List.length r.Check.Explore.violations);
      Alcotest.(check bool)
        (Printf.sprintf "%s exhausted (%d nodes)" name r.Check.Explore.nodes)
        true r.Check.Explore.exhausted)
    [ ("cas-counter", 3, 3); ("faa-counter", 4, 2); ("treiber", 3, 3) ]

let test_deep_msqueue_bug () =
  (* The msqueue seed bug needs two concurrent dequeuers; certify the
     explorer finds it at the wider instance, and that every reported
     schedule replays. *)
  let r =
    Check.Explore.explore ~config:deep ~structure:(find "msqueue-nocas") ~n:4
      ~ops:1 ()
  in
  Alcotest.(check bool) "violations found" true (r.Check.Explore.violations <> []);
  List.iter
    (fun (v : Check.Explore.violation) ->
      let out =
        Check.Schedule.run ~structure:(find "msqueue-nocas") ~n:4 ~ops:1
          ~tail:Check.Schedule.Stop v.schedule
      in
      Alcotest.(check bool) "replays" true
        (Check.Schedule.is_bad out.Check.Schedule.verdict))
    r.Check.Explore.violations

let test_long_fuzz_stock_clean () =
  let config = { Check.Fuzz.default with trials = 2_000; sched_trials = 8; seed } in
  List.iter
    (fun name ->
      let r =
        Check.Fuzz.fuzz ~config ~structure:(find name) ~n:3 ~ops:3 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "%s clean over %d trials (REPRO_TEST_SEED=%d)" name
           r.Check.Fuzz.trials seed)
        0
        (List.length r.Check.Fuzz.failures))
    [ "cas-counter"; "faa-counter"; "treiber"; "msqueue" ]

let test_long_conform_gates () =
  let r = Check.Conform.run ~long_budget:true ~seed:0 () in
  List.iter
    (fun (g : Check.Conform.gate) ->
      Alcotest.(check bool) (g.name ^ ": " ^ g.detail) true g.passed)
    r.Check.Conform.gates

let () =
  Alcotest.run "slow"
    [
      ( "explore (deep)",
        [
          Alcotest.test_case "stock certification" `Slow
            test_deep_stock_certification;
          Alcotest.test_case "msqueue-nocas found" `Slow test_deep_msqueue_bug;
        ] );
      ( "fuzz (long)",
        [ Alcotest.test_case "stock clean" `Slow test_long_fuzz_stock_clean ] );
      ( "conform (long)",
        [ Alcotest.test_case "all gates" `Slow test_long_conform_gates ] );
    ]
