(* QCheck property tests over the statistics substrate and the
   linearizability checkers: ECDF order-statistics laws, RFC 4180 CSV
   round-trips, chi-square sanity, and cross-validation of the
   memoized Wing–Gong search against the factorial brute-force
   oracle.  All randomness flows from Test_util.seed
   (REPRO_TEST_SEED). *)

open Core

let gen_sample =
  QCheck2.Gen.(
    map Array.of_list
      (list_size (int_range 1 60) (float_bound_inclusive 1000.)))

(* -- ECDF ----------------------------------------------------------- *)

let prop_cdf_monotone =
  Test_util.prop "ecdf cdf monotone, bounded"
    QCheck2.Gen.(
      triple gen_sample (float_bound_inclusive 1000.)
        (float_bound_inclusive 1000.))
    (fun (sample, x, y) ->
      let e = Stats.Ecdf.of_array sample in
      let lo = Float.min x y and hi = Float.max x y in
      let cl = Stats.Ecdf.cdf e lo and ch = Stats.Ecdf.cdf e hi in
      0. <= cl && cl <= ch && ch <= 1.)

let prop_quantile_bounds =
  Test_util.prop "ecdf quantile within sample range, monotone"
    QCheck2.Gen.(
      triple gen_sample (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (sample, p, q) ->
      let e = Stats.Ecdf.of_array sample in
      let plo = Float.min p q and phi = Float.max p q in
      let qlo = Stats.Ecdf.quantile e plo and qhi = Stats.Ecdf.quantile e phi in
      Stats.Ecdf.minimum e <= qlo && qlo <= qhi && qhi <= Stats.Ecdf.maximum e)

let prop_ks_laws =
  Test_util.prop "ks distance: 0 on self, symmetric, in [0,1]"
    QCheck2.Gen.(pair gen_sample gen_sample)
    (fun (a, b) ->
      let ea = Stats.Ecdf.of_array a and eb = Stats.Ecdf.of_array b in
      let d = Stats.Ecdf.ks_distance ea eb in
      Stats.Ecdf.ks_distance ea ea = 0.
      && Float.abs (d -. Stats.Ecdf.ks_distance eb ea) < 1e-12
      && 0. <= d && d <= 1.)

(* -- Table CSV round-trip ------------------------------------------- *)

let gen_cell =
  (* Cells exercising every RFC 4180 hazard: commas, double quotes,
     CR/LF, embedded newlines, leading/trailing spaces. *)
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; '0'; ','; '"'; '\n'; '\r'; ' ' ])
      (int_range 0 6))

let gen_table =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 4) gen_cell)
      (list_size (int_range 0 5) (list_size (int_range 0 4) gen_cell)))

let prop_csv_roundtrip =
  Test_util.prop "table to_csv/of_csv round-trip" gen_table
    ~print:(fun (h, rows) ->
      String.concat "|" h ^ " / "
      ^ String.concat ";" (List.map (String.concat "|") rows))
    (fun (headers, row_data) ->
      let t = Stats.Table.create headers in
      List.iter
        (fun r ->
          (* add_row rejects rows wider than the header. *)
          let r =
            if List.length r > List.length headers then
              List.filteri (fun i _ -> i < List.length headers) r
            else r
          in
          Stats.Table.add_row t r)
        row_data;
      let t' = Stats.Table.of_csv (Stats.Table.to_csv t) in
      Stats.Table.headers t' = Stats.Table.headers t
      && Stats.Table.rows t' = Stats.Table.rows t)

(* -- Chi-square ----------------------------------------------------- *)

let gen_counts =
  QCheck2.Gen.(
    map Array.of_list (list_size (int_range 2 10) (int_range 0 50)))

let prop_chi2_nonneg =
  Test_util.prop "chi-square statistic non-negative" gen_counts (fun counts ->
      Stats.Chi_square.uniform_statistic counts >= 0.)

let prop_chi2_zero_iff_equal =
  Test_util.prop "chi-square zero iff observed matches expected"
    QCheck2.Gen.(pair (int_range 2 10) (int_range 1 50))
    (fun (k, c) ->
      (* Exactly uniform counts give statistic 0; perturbing one bin
         (preserving the total) makes it strictly positive. *)
      let flat = Array.make k c in
      let bumped = Array.copy flat in
      bumped.(0) <- c + 1;
      bumped.(1) <- c - 1;
      Stats.Chi_square.uniform_statistic flat = 0.
      && Stats.Chi_square.uniform_statistic bumped > 0.)

(* -- check vs check_brute cross-validation -------------------------- *)

(* Well-formed random stack histories: ops are dealt to 3 processes
   and timed with per-process clocks, so intervals are sequential
   within each process and overlap freely across processes.  Results
   are chosen adversarially at random, so roughly half the histories
   are non-linearizable — both checkers must agree either way. *)
let gen_history =
  QCheck2.Gen.(
    list_size (int_range 0 6)
      (tup4 (int_range 0 2)
         (oneof
            [
              map (fun v -> `Add v) (int_range 1 4);
              return `Take_got_1;
              return `Take_got_2;
              return `Take_empty;
            ])
         (int_range 0 3) (int_range 0 3)))

let history_of_plan plan =
  let clock = Array.make 3 0 in
  List.map
    (fun (proc, kind, gap1, gap2) ->
      let op, result =
        match kind with
        | `Add v -> (Scu.Checkable.Add v, Scu.Checkable.Done)
        | `Take_got_1 -> (Scu.Checkable.Take, Scu.Checkable.Took 1)
        | `Take_got_2 -> (Scu.Checkable.Take, Scu.Checkable.Took 2)
        | `Take_empty -> (Scu.Checkable.Take, Scu.Checkable.Took_empty)
      in
      let invoked = clock.(proc) + gap1 in
      let returned = invoked + 1 + gap2 in
      clock.(proc) <- returned + 1;
      { Linearize.Checker.proc; op; result; invoked; returned })
    plan

let prop_check_agrees_with_brute =
  Test_util.prop "memoized checker agrees with brute-force oracle" ~count:500
    gen_history
    ~print:(fun plan ->
      String.concat "; "
        (List.map Scu.Checkable.event_to_string (history_of_plan plan)))
    (fun plan ->
      let h = history_of_plan plan in
      Linearize.Checker.check Scu.Checkable.stack_spec h
      = Linearize.Checker.check_brute Scu.Checkable.stack_spec h)

let prop_queue_check_agrees_with_brute =
  Test_util.prop "checker/oracle agreement (FIFO spec)" ~count:500 gen_history
    (fun plan ->
      let h = history_of_plan plan in
      Linearize.Checker.check Scu.Checkable.queue_spec h
      = Linearize.Checker.check_brute Scu.Checkable.queue_spec h)

let () =
  Alcotest.run "props"
    [
      ("ecdf", [ prop_cdf_monotone; prop_quantile_bounds; prop_ks_laws ]);
      ("table", [ prop_csv_roundtrip ]);
      ("chi-square", [ prop_chi2_nonneg; prop_chi2_zero_iff_equal ]);
      ( "linearize oracle",
        [ prop_check_agrees_with_brute; prop_queue_check_agrees_with_brute ] );
    ]
