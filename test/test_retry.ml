(* Recovery-path tests: the per-cell retry loop (attempt counting,
   fault-injected failures recovered on attempt k, exhausted policies,
   timeouts on wedged work), the deterministic fault registry the CLI
   and CI drive, and the jittered backoff schedule the delays come
   from. *)

module Retry = Experiments.Retry

let error =
  Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf (Retry.error_message e))
    ( = )

exception Flaky of int

(* ---------------------------------------------------------------- *)
(* Retry loop                                                       *)
(* ---------------------------------------------------------------- *)

let no_retry = { Retry.max_attempts = 1; timeout_s = None; backoff = false }

let test_first_try_success () =
  let calls = ref 0 in
  let r, attempts =
    Retry.run Retry.default (fun () ->
        incr calls;
        42)
  in
  Alcotest.(check (result int error)) "payload" (Ok 42) r;
  Alcotest.(check int) "one attempt" 1 attempts;
  Alcotest.(check int) "work ran once" 1 !calls

let succeeds_on k =
  let calls = ref 0 in
  fun () ->
    incr calls;
    if !calls < k then raise (Flaky !calls) else !calls

let test_recovers_on_attempt_k () =
  (* A cell that fails its first k-1 attempts must come back Ok on
     attempt k when the policy allows k attempts. *)
  List.iter
    (fun k ->
      let policy = { Retry.max_attempts = k; timeout_s = None; backoff = false } in
      let r, attempts = Retry.run policy (succeeds_on k) in
      Alcotest.(check (result int error))
        (Printf.sprintf "payload on attempt %d" k)
        (Ok k) r;
      Alcotest.(check int) (Printf.sprintf "attempts = %d" k) k attempts)
    [ 1; 2; 3; 5 ]

let test_gives_up_after_max_attempts () =
  let calls = ref 0 in
  let policy = { Retry.max_attempts = 3; timeout_s = None; backoff = false } in
  let r, attempts =
    Retry.run policy (fun () ->
        incr calls;
        raise (Flaky !calls))
  in
  (match r with
  | Error (Retry.Raised (Flaky n, _)) ->
      Alcotest.(check int) "last attempt's exception" 3 n
  | Error e -> Alcotest.fail ("unexpected error: " ^ Retry.error_message e)
  | Ok _ -> Alcotest.fail "flaky work cannot succeed");
  Alcotest.(check int) "attempts = max_attempts" 3 attempts;
  Alcotest.(check int) "work ran max_attempts times" 3 !calls

let test_fault_hook_fails_attempts () =
  (* The ?fault hook is what the driver wires the registry into: it
     runs before the work and may raise to fail the attempt without
     the work itself ever running. *)
  let work_runs = ref 0 in
  let policy = { Retry.max_attempts = 3; timeout_s = None; backoff = false } in
  let r, attempts =
    Retry.run policy
      ~fault:(fun ~attempt -> if attempt <= 2 then failwith "injected")
      (fun () ->
        incr work_runs;
        "done")
  in
  Alcotest.(check (result string error)) "recovered" (Ok "done") r;
  Alcotest.(check int) "attempts" 3 attempts;
  Alcotest.(check int) "work only ran on the clean attempt" 1 !work_runs

let test_timeout_wedged_cell () =
  (* A wedged cell: each attempt sleeps far past the limit, so the
     policy times out both attempts and reports Timed_out. *)
  let policy =
    { Retry.max_attempts = 2; timeout_s = Some 0.03; backoff = false }
  in
  let t0 = Pool.monotonic_now () in
  let r, attempts = Retry.run policy (fun () -> Unix.sleepf 0.3) in
  let dt = Pool.monotonic_now () -. t0 in
  Alcotest.(check (result unit error))
    "timed out" (Error (Retry.Timed_out 0.03)) r;
  Alcotest.(check int) "both attempts made" 2 attempts;
  Alcotest.(check bool)
    (Printf.sprintf "caller got control back quickly (%.3fs)" dt)
    true (dt < 0.25)

let test_timeout_fast_cell_unaffected () =
  let policy =
    { Retry.max_attempts = 2; timeout_s = Some 5.0; backoff = false }
  in
  let r, attempts = Retry.run policy (fun () -> 7) in
  Alcotest.(check (result int error)) "fast cell passes through" (Ok 7) r;
  Alcotest.(check int) "one attempt" 1 attempts

let test_timeout_then_recovery () =
  (* First attempt wedges, second is fast: the retry absorbs the
     timeout, exactly the single-failure recovery the default policy
     promises. *)
  let calls = ref 0 in
  let policy =
    { Retry.max_attempts = 2; timeout_s = Some 0.05; backoff = false }
  in
  let r, attempts =
    Retry.run policy (fun () ->
        incr calls;
        if !calls = 1 then Unix.sleepf 0.3;
        !calls)
  in
  (match r with
  | Ok n -> Alcotest.(check int) "second attempt's payload" 2 n
  | Error e -> Alcotest.fail (Retry.error_message e));
  Alcotest.(check int) "attempts" 2 attempts

let test_policy_validation () =
  Alcotest.check_raises "max_attempts 0 rejected"
    (Invalid_argument "Retry.run: max_attempts must be >= 1") (fun () ->
      ignore (Retry.run { no_retry with max_attempts = 0 } (fun () -> ())));
  Alcotest.check_raises "non-positive timeout rejected"
    (Invalid_argument "Retry.run: timeout_s must be > 0") (fun () ->
      ignore (Retry.run { no_retry with timeout_s = Some 0. } (fun () -> ())))

(* ---------------------------------------------------------------- *)
(* Fault registry                                                   *)
(* ---------------------------------------------------------------- *)

let with_faults specs f =
  Retry.install_faults specs;
  Fun.protect ~finally:Retry.clear_faults f

let injects ~exp_id ~label ~attempt =
  match Retry.inject ~exp_id ~label ~attempt with
  | () -> false
  | exception Retry.Injected_fault _ -> true

let test_registry_label_key () =
  with_faults [ "cell-a:2" ] (fun () ->
      Alcotest.(check bool) "first failure" true
        (injects ~exp_id:"e" ~label:"cell-a" ~attempt:1);
      Alcotest.(check bool) "second failure" true
        (injects ~exp_id:"other-exp" ~label:"cell-a" ~attempt:2);
      Alcotest.(check bool) "budget of 2 is spent" false
        (injects ~exp_id:"e" ~label:"cell-a" ~attempt:3);
      Alcotest.(check bool) "other labels unaffected" false
        (injects ~exp_id:"e" ~label:"cell-b" ~attempt:1))

let test_registry_scoped_key () =
  with_faults [ "e1/cell:1" ] (fun () ->
      Alcotest.(check bool) "wrong experiment does not match" false
        (injects ~exp_id:"e2" ~label:"cell" ~attempt:1);
      Alcotest.(check bool) "scoped key matches its experiment" true
        (injects ~exp_id:"e1" ~label:"cell" ~attempt:1);
      Alcotest.(check bool) "spent" false
        (injects ~exp_id:"e1" ~label:"cell" ~attempt:2))

let test_registry_clear_and_replace () =
  Retry.install_faults [ "a:5" ];
  Retry.install_faults [ "b:1" ];
  Alcotest.(check bool) "install replaces the registry" false
    (injects ~exp_id:"e" ~label:"a" ~attempt:1);
  Alcotest.(check bool) "new spec active" true
    (injects ~exp_id:"e" ~label:"b" ~attempt:1);
  Retry.install_faults [ "c:1" ];
  Retry.clear_faults ();
  Alcotest.(check bool) "clear empties the registry" false
    (injects ~exp_id:"e" ~label:"c" ~attempt:1)

let test_registry_bad_specs () =
  List.iter
    (fun spec ->
      match Retry.install_faults [ spec ] with
      | () -> Alcotest.fail (Printf.sprintf "accepted malformed spec %S" spec)
      | exception Invalid_argument _ -> ())
    [ "bad"; "cell:"; "cell:0"; "cell:-1"; ":3"; "cell:x"; "" ];
  (* A malformed spec must not half-install the batch. *)
  (match Retry.install_faults [ "good:1"; "bad" ] with
  | () -> Alcotest.fail "batch with a malformed spec accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "nothing installed from the failed batch" false
    (injects ~exp_id:"e" ~label:"good" ~attempt:1)

let test_registry_drives_retry () =
  (* End-to-end through Retry.run, the way bin/repro wires it: the
     registry fails attempt 1, the retry recovers on attempt 2. *)
  with_faults [ "lifting-n2:1" ] (fun () ->
      let policy =
        { Retry.max_attempts = 2; timeout_s = None; backoff = false }
      in
      let fault ~attempt =
        Retry.inject ~exp_id:"fig1" ~label:"lifting-n2" ~attempt
      in
      let r, attempts = Retry.run policy ~fault (fun () -> "payload") in
      Alcotest.(check (result string error)) "recovered" (Ok "payload") r;
      Alcotest.(check int) "attempts" 2 attempts)

(* ---------------------------------------------------------------- *)
(* Backoff delays                                                   *)
(* ---------------------------------------------------------------- *)

let test_backoff_seconds_schedule () =
  (* Unjittered: 1 ms per spin unit, doubling, truncated at max. *)
  let b = Runtime.Backoff.create ~min_spins:4 ~max_spins:16 () in
  let delays = List.init 4 (fun _ -> Runtime.Backoff.seconds b) in
  Alcotest.(check (list (float 1e-9)))
    "doubling then truncated"
    [ 0.004; 0.008; 0.016; 0.016 ]
    delays

let test_backoff_seconds_jitter () =
  let take n st =
    let b = Runtime.Backoff.create ~min_spins:4 ~max_spins:1024 () in
    List.init n (fun _ -> Runtime.Backoff.seconds ~jitter:st b)
  in
  let d1 = take 6 (Random.State.make [| 11 |]) in
  let d2 = take 6 (Random.State.make [| 11 |]) in
  Alcotest.(check (list (float 1e-12))) "same seed, same delays" d1 d2;
  let bases = [ 0.004; 0.008; 0.016; 0.032; 0.064; 0.128 ] in
  List.iter2
    (fun d base ->
      Alcotest.(check bool)
        (Printf.sprintf "jittered delay %.6f within [0.5, 1.5) of %.3f" d base)
        true
        (d >= 0.5 *. base && d < 1.5 *. base))
    d1 bases;
  let d3 = take 6 (Random.State.make [| 12 |]) in
  Alcotest.(check bool) "different seeds decorrelate" true (d1 <> d3)

let () =
  Alcotest.run "retry"
    [
      ( "loop",
        [
          Alcotest.test_case "first-try success" `Quick test_first_try_success;
          Alcotest.test_case "recovers on attempt k" `Quick
            test_recovers_on_attempt_k;
          Alcotest.test_case "gives up after max attempts" `Quick
            test_gives_up_after_max_attempts;
          Alcotest.test_case "fault hook" `Quick test_fault_hook_fails_attempts;
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
        ] );
      ( "timeout",
        [
          Alcotest.test_case "wedged cell times out" `Quick
            test_timeout_wedged_cell;
          Alcotest.test_case "fast cell unaffected" `Quick
            test_timeout_fast_cell_unaffected;
          Alcotest.test_case "timeout then recovery" `Quick
            test_timeout_then_recovery;
        ] );
      ( "faults",
        [
          Alcotest.test_case "label key" `Quick test_registry_label_key;
          Alcotest.test_case "exp/label key" `Quick test_registry_scoped_key;
          Alcotest.test_case "clear and replace" `Quick
            test_registry_clear_and_replace;
          Alcotest.test_case "malformed specs" `Quick test_registry_bad_specs;
          Alcotest.test_case "registry drives retry" `Quick
            test_registry_drives_retry;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "seconds schedule" `Quick
            test_backoff_seconds_schedule;
          Alcotest.test_case "jitter determinism and range" `Quick
            test_backoff_seconds_jitter;
        ] );
    ]
