(* Tests for the exact paper chains: ergodicity (Lemma 3), the lifting
   results (Lemmas 5, 10, 13), fiber symmetry (Lemma 6), the fairness
   consequence W_i = n W (Lemmas 7, 14), parallel-code latency (Lemma
   11), the augmented-CAS return time and Z recurrence (Lemma 12), and
   the Ramanujan asymptotics (Corollary 3). *)

open Core

let check_close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.9g, got %.9g)" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. (1. +. Float.abs expected))

(* -- SCU scan-validate chains (§6.1) -------------------------------- *)

let test_scu_sizes () =
  let ind = Chains.Scu_chain.Individual.make ~n:3 in
  Alcotest.(check int) "3^3 - 1 states" 26 ind.chain.size;
  let sys = Chains.Scu_chain.System.make ~n:3 in
  (* (n+1)(n+2)/2 - 1 = 9 for n = 3. *)
  Alcotest.(check int) "system states" 9 sys.chain.size

let test_scu_chains_valid () =
  List.iter
    (fun n ->
      let ind = Chains.Scu_chain.Individual.make ~n in
      (match Markov.Chain.validate ind.chain with
      | Ok () -> ()
      | Error e -> Alcotest.failf "individual n=%d: %s" n e);
      let sys = Chains.Scu_chain.System.make ~n in
      match Markov.Chain.validate sys.chain with
      | Ok () -> ()
      | Error e -> Alcotest.failf "system n=%d: %s" n e)
    [ 1; 2; 3; 4; 5 ]

let test_scu_ergodic_lemma3 () =
  (* Reproduction finding: Lemma 3 claims both chains are ergodic, but
     they are in fact *periodic with period 2* — every step changes
     exactly one process's phase, flipping the parity of
     #CCAS + #OldCAS (equivalently, a changes by ±1 in the system
     chain), and no state has a self-loop.  What the paper actually
     uses — irreducibility, hence a unique stationary distribution
     (Theorem 1) and long-run averages — does hold, so every
     quantitative result stands.  We assert the correct facts. *)
  List.iter
    (fun n ->
      let ind = Chains.Scu_chain.Individual.make ~n in
      Alcotest.(check bool)
        (Printf.sprintf "individual n=%d irreducible" n)
        true
        (Markov.Ergodic.strongly_connected ind.chain);
      Alcotest.(check int)
        (Printf.sprintf "individual n=%d period" n)
        2
        (Markov.Ergodic.period ind.chain);
      let sys = Chains.Scu_chain.System.make ~n in
      Alcotest.(check bool)
        (Printf.sprintf "system n=%d irreducible" n)
        true
        (Markov.Ergodic.strongly_connected sys.chain);
      Alcotest.(check int)
        (Printf.sprintf "system n=%d period" n)
        2
        (Markov.Ergodic.period sys.chain))
    [ 2; 3; 4 ]

let test_scu_lifting_lemma5 () =
  (* Lemma 5: the system chain is a lifting of the individual chain,
     via the Definition 2 map. *)
  List.iter
    (fun n ->
      let ind = Chains.Scu_chain.Individual.make ~n in
      let sys = Chains.Scu_chain.System.make ~n in
      let f = Chains.Scu_chain.lift ind sys in
      let report = Markov.Lifting.verify ~base:sys.chain ~lifted:ind.chain ~f () in
      Alcotest.(check bool)
        (Printf.sprintf "flow homomorphism n=%d (err %.2e)" n report.max_flow_error)
        true (report.max_flow_error < 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "pi aggregation n=%d (Lemma 4)" n)
        true (report.max_pi_error < 1e-9))
    [ 2; 3; 4; 5 ]

let test_scu_fiber_symmetry_lemma6 () =
  List.iter
    (fun n ->
      let ind = Chains.Scu_chain.Individual.make ~n in
      let sys = Chains.Scu_chain.System.make ~n in
      let pi = Markov.Stationary.compute ind.chain in
      Alcotest.(check bool)
        (Printf.sprintf "symmetric fibers n=%d" n)
        true
        (Markov.Lifting.fiber_symmetric ~lifted:ind.chain
           ~f:(Chains.Scu_chain.lift ind sys) ~pi ()))
    [ 2; 3; 4 ]

let test_scu_figure1_two_process () =
  (* Figure 1: for n=2, check a few hand-derived facts.  States of the
     system chain: (2,0),(1,0),(1,1),(0,1),(0,0); total 5 states. *)
  let sys = Chains.Scu_chain.System.make ~n:2 in
  Alcotest.(check int) "5 system states" 5 sys.chain.size;
  (* From (0,0) — both about to CAS with the current value — one wins
     and the other goes stale: -> (1,1) with probability 1. *)
  let from00 = sys.chain.row (sys.encode ~a:0 ~b:0) in
  Alcotest.(check int) "one outgoing edge" 1 (List.length from00);
  (match from00 with
  | [ (target, p) ] ->
      Alcotest.(check int) "goes to (1,1)" (sys.encode ~a:1 ~b:1) target;
      check_close "prob 1" 1. p
  | _ -> Alcotest.fail "unexpected structure");
  (* From (1,1): the Read process steps -> (0,1) w.p. 1/2; the OldCAS
     process steps -> (2,0) w.p. 1/2. *)
  let from11 = List.sort compare (sys.chain.row (sys.encode ~a:1 ~b:1)) in
  let expected =
    List.sort compare
      [ (sys.encode ~a:0 ~b:1, 0.5); (sys.encode ~a:2 ~b:0, 0.5) ]
  in
  Alcotest.(check bool) "edges from (1,1)" true (from11 = expected)

let test_scu_individual_latency_lemma7 () =
  (* W_i = n * W, derived two ways: from the individual chain's
     per-process success rate and from the system chain. *)
  List.iter
    (fun n ->
      let ind = Chains.Scu_chain.Individual.make ~n in
      let pi = Markov.Stationary.compute ind.chain in
      let rate_p0 =
        Markov.Stationary.success_rate ind.chain ~pi
          ~weight:(Chains.Scu_chain.Individual.success_weight ind ~proc:0)
      in
      let w_i = 1. /. rate_p0 in
      let w = Chains.Scu_chain.System.system_latency ~n in
      check_close ~tol:1e-7 (Printf.sprintf "W_0 = nW at n=%d" n) (float_of_int n *. w) w_i)
    [ 2; 3; 4; 5 ]

let test_scu_latency_sqrt_growth () =
  (* Theorem 5: W = Theta(sqrt n).  Fit the exact chain values for a
     range of n; the exponent should be close to 1/2 (it approaches
     1/2 from above as n grows; allow slack at these small n). *)
  let ns = [ 4; 9; 16; 25; 36; 49; 64 ] in
  let pts =
    List.map
      (fun n -> (float_of_int n, Chains.Scu_chain.System.system_latency ~n))
      ns
  in
  let fit = Stats.Regression.power_law pts in
  Alcotest.(check bool)
    (Printf.sprintf "exponent ~0.5 (got %.3f)" fit.slope)
    true
    (fit.slope > 0.40 && fit.slope < 0.60);
  (* And the constant is modest: W <= 2 sqrt(n) for these n. *)
  List.iter
    (fun (n, w) ->
      Alcotest.(check bool)
        (Printf.sprintf "W(%g)=%.3f <= 2 sqrt n" n w)
        true
        (w <= 2. *. sqrt n))
    pts

let test_scu_n1_exact () =
  (* Single process: read, CAS, success — W = 2 exactly. *)
  check_close "W(1) = 2" 2. (Chains.Scu_chain.System.system_latency ~n:1)

(* -- Parallel code chains (§6.2) ------------------------------------ *)

let test_parallel_sizes () =
  let ind = Chains.Parallel_chain.Individual.make ~n:3 ~q:4 in
  Alcotest.(check int) "q^n states" 64 ind.chain.size;
  let sys = Chains.Parallel_chain.System.make ~n:3 ~q:4 in
  (* C(3+3,3) = 20. *)
  Alcotest.(check int) "compositions" 20 sys.chain.size

let test_parallel_individual_uniform () =
  (* §6.2: the individual chain's stationary distribution is uniform. *)
  let ind = Chains.Parallel_chain.Individual.make ~n:3 ~q:3 in
  let pi = Markov.Stationary.compute ind.chain in
  Array.iter (fun p -> check_close ~tol:1e-7 "uniform" (1. /. 27.) p) pi

let test_parallel_periodicity () =
  (* Same reproduction finding as for the SCU chains: §6.2 calls both
     parallel-code chains ergodic, but each step advances one counter
     by one, so the total counter sum mod q is a rotating invariant:
     the chains are irreducible with period exactly q. *)
  List.iter
    (fun (n, q) ->
      let ind = Chains.Parallel_chain.Individual.make ~n ~q in
      Alcotest.(check bool) "individual irreducible" true
        (Markov.Ergodic.strongly_connected ind.chain);
      Alcotest.(check int)
        (Printf.sprintf "individual period = q (n=%d q=%d)" n q)
        q
        (Markov.Ergodic.period ind.chain);
      let sys = Chains.Parallel_chain.System.make ~n ~q in
      Alcotest.(check int)
        (Printf.sprintf "system period = q (n=%d q=%d)" n q)
        q
        (Markov.Ergodic.period sys.chain))
    [ (2, 2); (3, 3); (2, 5) ]

let test_parallel_lifting_lemma10 () =
  List.iter
    (fun (n, q) ->
      let ind = Chains.Parallel_chain.Individual.make ~n ~q in
      let sys = Chains.Parallel_chain.System.make ~n ~q in
      let f = Chains.Parallel_chain.lift ind sys in
      Alcotest.(check bool)
        (Printf.sprintf "lifting holds n=%d q=%d" n q)
        true
        (Markov.Lifting.is_lifting ~base:sys.chain ~lifted:ind.chain ~f ()))
    [ (2, 2); (3, 3); (2, 5); (4, 2) ]

let test_parallel_latency_lemma11 () =
  (* System latency exactly q; individual latency exactly nq. *)
  List.iter
    (fun (n, q) ->
      check_close ~tol:1e-7
        (Printf.sprintf "W = q at n=%d q=%d" n q)
        (float_of_int q)
        (Chains.Parallel_chain.System.system_latency ~n ~q);
      let ind = Chains.Parallel_chain.Individual.make ~n ~q in
      let pi = Markov.Stationary.compute ind.chain in
      let rate =
        Markov.Stationary.success_rate ind.chain ~pi
          ~weight:(Chains.Parallel_chain.Individual.completion_weight ind ~proc:0)
      in
      check_close ~tol:1e-7
        (Printf.sprintf "W_i = nq at n=%d q=%d" n q)
        (float_of_int (n * q))
        (1. /. rate))
    [ (2, 3); (3, 2); (4, 4); (1, 5) ]

(* -- Augmented-CAS counter chains (§7) ------------------------------ *)

let test_counter_sizes () =
  let ind = Chains.Counter_chain.Individual.make ~n:4 in
  Alcotest.(check int) "2^n - 1 states" 15 ind.chain.size;
  let glob = Chains.Counter_chain.Global.make ~n:4 in
  Alcotest.(check int) "n states" 4 glob.chain.size

let test_counter_ergodic_lemma13 () =
  List.iter
    (fun n ->
      let ind = Chains.Counter_chain.Individual.make ~n in
      Alcotest.(check bool) "individual ergodic" true (Markov.Ergodic.is_ergodic ind.chain);
      let glob = Chains.Counter_chain.Global.make ~n in
      Alcotest.(check bool) "global ergodic" true (Markov.Ergodic.is_ergodic glob.chain))
    [ 2; 3; 5 ]

let test_counter_lifting_lemma13 () =
  List.iter
    (fun n ->
      let ind = Chains.Counter_chain.Individual.make ~n in
      let glob = Chains.Counter_chain.Global.make ~n in
      Alcotest.(check bool)
        (Printf.sprintf "lifting n=%d" n)
        true
        (Markov.Lifting.is_lifting ~base:glob.chain ~lifted:ind.chain
           ~f:(Chains.Counter_chain.lift ind) ()))
    [ 2; 3; 4; 5; 6 ]

let test_counter_fairness_lemma14 () =
  (* W_i = n W for the counter chains. *)
  List.iter
    (fun n ->
      let ind = Chains.Counter_chain.Individual.make ~n in
      let pi = Markov.Stationary.compute ind.chain in
      let rate0 =
        Markov.Stationary.success_rate ind.chain ~pi
          ~weight:(Chains.Counter_chain.Individual.win_weight ind ~proc:0)
      in
      let w = Chains.Counter_chain.Global.return_time_v1 ~n in
      check_close ~tol:1e-6
        (Printf.sprintf "W_i = nW at n=%d" n)
        (float_of_int n *. w)
        (1. /. rate0))
    [ 2; 3; 4; 5 ]

let test_counter_z_recurrence_lemma12 () =
  (* Z(n-1) from the paper's recurrence equals the chain's return time
     for v1, and is bounded by 2 sqrt n. *)
  List.iter
    (fun n ->
      let z = Chains.Counter_chain.z_recurrence ~n in
      let w = Chains.Counter_chain.Global.return_time_v1 ~n in
      check_close ~tol:1e-6 (Printf.sprintf "Z(n-1) = W at n=%d" n) z.(n - 1) w;
      Alcotest.(check bool)
        (Printf.sprintf "W <= 2 sqrt n at n=%d" n)
        true
        (w <= 2. *. sqrt (float_of_int n)))
    [ 1; 2; 3; 5; 10; 50; 200 ]

let test_counter_ramanujan_corollary3 () =
  (* Z(n-1) = sqrt(pi n/2) + 2/3 + O(1/sqrt n) (Flajolet et al.'s
     Q(n) = sqrt(pi n/2) - 1/3 + ..., and Z = Q + 1): the two-term
     expansion matches tightly, and the leading ratio -> 1. *)
  List.iter
    (fun n ->
      let z = (Chains.Counter_chain.z_recurrence ~n).(n - 1) in
      let refined = Chains.Ramanujan.asymptotic_refined n in
      Alcotest.(check bool)
        (Printf.sprintf "two-term expansion at n=%d (z=%.4f vs %.4f)" n z refined)
        true
        (Float.abs (z -. refined) < 0.05);
      let ratio = z /. Chains.Ramanujan.asymptotic n in
      Alcotest.(check bool)
        (Printf.sprintf "leading ratio at n=%d is %.4f" n ratio)
        true
        (Float.abs (ratio -. 1.) < 7. /. sqrt (float_of_int n)))
    [ 10; 100; 1000; 10000 ]

let test_ramanujan_q_small_values () =
  (* Knuth's Q: Q(1) = 1; Q(2) = 1 + 1/2; Q(3) = 1 + 2/3 + 2/9. *)
  check_close "Q(1)" 1. (Chains.Ramanujan.q 1);
  check_close "Q(2)" 1.5 (Chains.Ramanujan.q 2);
  check_close "Q(3)" (17. /. 9.) (Chains.Ramanujan.q 3);
  check_close "birthday(2)" 2.5 (Chains.Ramanujan.birthday_expectation 2);
  check_close "birthday = z + 1" (Chains.Ramanujan.z_value 7 +. 1.)
    (Chains.Ramanujan.birthday_expectation 7)

let test_ramanujan_matches_z () =
  (* Z(n-1) = Q(n) exactly: the chain counts the draws after the first
     (the initial configuration is the first "draw"). *)
  List.iter
    (fun n ->
      let z = (Chains.Counter_chain.z_recurrence ~n).(n - 1) in
      check_close ~tol:1e-9
        (Printf.sprintf "Q(%d) = Z(n-1)" n)
        (Chains.Ramanujan.z_value n)
        z)
    [ 2; 3; 10; 100 ]

(* -- Sparse system chain + mean field (scaling layer) ---------------- *)

let test_scu_sparse_matches_dense () =
  (* The CSR construction must be the same chain as [make], state for
     state: identical size, identical rows under the arithmetic index,
     identical stationary vector. *)
  List.iter
    (fun n ->
      let sys = Chains.Scu_chain.System.make ~n in
      let sp = Chains.Scu_chain.System.sparse ~n in
      Alcotest.(check int) "size" sys.chain.size sp.Markov.Sparse.size;
      for i = 0 to sys.chain.size - 1 do
        let dense_row = List.sort compare (sys.chain.row i) in
        let sparse_row = List.sort compare (Markov.Sparse.row sp i) in
        Alcotest.(check bool)
          (Printf.sprintf "row %d identical (n=%d)" i n)
          true
          (dense_row = sparse_row)
      done;
      let pi_dense = Markov.Stationary.compute sys.chain in
      let pi_sparse = Markov.Sparse.stationary sp in
      Array.iteri
        (fun i p -> check_close ~tol:1e-8 (Printf.sprintf "pi(%d)" i) p pi_sparse.(i))
        pi_dense)
    [ 1; 2; 3; 5; 8 ]

let test_scu_index_roundtrip () =
  let n = 7 in
  let size = ((n + 1) * (n + 2) / 2) - 1 in
  for i = 0 to size - 1 do
    let a, b = Chains.Scu_chain.System.decode_index ~n i in
    Alcotest.(check int) "roundtrip" i (Chains.Scu_chain.System.index ~n ~a ~b);
    Alcotest.(check bool) "in simplex" true
      (a >= 0 && b >= 0 && a + b <= n && not (a = 0 && b = n))
  done

let test_scu_sparse_latency_agrees () =
  List.iter
    (fun n ->
      check_close ~tol:1e-9
        (Printf.sprintf "sparse W = dense W at n=%d" n)
        (Chains.Scu_chain.System.system_latency ~n)
        (Chains.Scu_chain.System.sparse_latency ~n ()))
    [ 1; 2; 4; 8; 16 ]

let test_scu_lump_reproduces_system () =
  (* Lemmas 4-6 executed: lumping the 3ⁿ−1-state individual chain
     through the (a, b) count map yields exactly the system chain. *)
  List.iter
    (fun n ->
      let ind = Chains.Scu_chain.Individual.make ~n in
      let sys = Chains.Scu_chain.System.make ~n in
      let lumped =
        Markov.Lifting.lump ~lifted:ind.chain
          ~f:(Chains.Scu_chain.lift ind sys)
          ~base_size:sys.chain.size ()
      in
      for v = 0 to sys.chain.size - 1 do
        List.iter2
          (fun (j, p) (j', p') ->
            Alcotest.(check int) "target" j j';
            check_close ~tol:1e-9 "prob" p p')
          (List.sort compare (sys.chain.row v))
          (List.sort compare (lumped.Markov.Chain.row v))
      done)
    [ 2; 3; 4 ]

let test_meanfield_fixed_point () =
  (* The RK4 steady state must land on the analytic fixed point
     a* = n/2, c* = sqrt(n/2), and the drift must vanish there. *)
  List.iter
    (fun n ->
      let fp = Chains.Meanfield.fixed_point ~n in
      let d = Chains.Meanfield.drift ~n:(float_of_int n) fp in
      check_close ~tol:1e-9 "zero drift a" 0. d.Chains.Meanfield.a;
      check_close ~tol:1e-9 "zero drift b" 0. d.Chains.Meanfield.b;
      let s = Chains.Meanfield.steady_state ~n () in
      check_close ~tol:1e-9
        (Printf.sprintf "a* at n=%d" n)
        fp.Chains.Meanfield.a s.Chains.Meanfield.a;
      check_close ~tol:1e-9
        (Printf.sprintf "b* at n=%d" n)
        fp.Chains.Meanfield.b s.Chains.Meanfield.b)
    [ 4; 64; 1024; 100_000 ]

let test_meanfield_latency_closed_form () =
  List.iter
    (fun n ->
      check_close ~tol:1e-9
        (Printf.sprintf "W_mf = sqrt(2n) at n=%d" n)
        (Chains.Meanfield.latency_closed_form ~n)
        (Chains.Meanfield.latency ~n ());
      check_close ~tol:1e-12 "predict agrees"
        (Chains.Meanfield.latency_closed_form ~n)
        (Chains.Predict.meanfield_scan_validate_latency ~n))
    [ 16; 1000; 1_000_000 ]

let test_fluctuation_correction_ratio () =
  (* W_exact / W_mf decreases toward sqrt(pi/2) ~ 1.2533 from above. *)
  let ratio n =
    Chains.Scu_chain.System.system_latency ~n
    /. Chains.Meanfield.latency_closed_form ~n
  in
  let r16 = ratio 16 and r64 = ratio 64 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone toward sqrt(pi/2) (%.4f > %.4f)" r16 r64)
    true
    (r16 > r64 && r64 > Chains.Predict.fluctuation_correction)

(* -- Predictions ----------------------------------------------------- *)

let test_predict_shapes () =
  check_close "sqrt rate" 0.25 (Chains.Predict.completion_rate_sqrt 16.);
  check_close "worst case" 0.0625 (Chains.Predict.completion_rate_worst_case 16.);
  check_close "scu latency" (3. +. (2. *. 2. *. 4.))
    (Chains.Predict.scu_system_latency ~q:3 ~s:2 ~alpha:2. 16.);
  check_close "individual = n * system" (16. *. (3. +. 16.))
    (Chains.Predict.scu_individual_latency ~q:3 ~s:1 ~alpha:4. 16.)

let test_predict_fitted_alpha () =
  let alpha = Chains.Predict.fitted_alpha ~ns:[ 4; 9; 16; 25; 36 ] in
  Alcotest.(check bool)
    (Printf.sprintf "alpha in a sane band (got %.3f)" alpha)
    true
    (alpha > 0.8 && alpha < 2.0)

(* -- Property tests ---------------------------------------------------- *)

let prop name ?(count = 100) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let prop_scu_encode_roundtrip =
  prop "scu individual encode/decode roundtrip"
    QCheck2.Gen.(pair (int_range 1 6) (int_range 0 1000))
    (fun (n, raw) ->
      let ind = Chains.Scu_chain.Individual.make ~n in
      let i = raw mod ind.chain.size in
      ind.encode (ind.decode i) = i)

let prop_counter_encode_roundtrip =
  prop "counter individual encode/decode roundtrip"
    QCheck2.Gen.(pair (int_range 1 10) (int_range 0 10_000))
    (fun (n, raw) ->
      let ind = Chains.Counter_chain.Individual.make ~n in
      let i = raw mod ind.chain.size in
      ind.encode (ind.decode i) = i)

let prop_scu_weights_consistent =
  (* The per-process success weights must sum to the global success
     weight in every state — Lemma 7's bookkeeping. *)
  prop "per-process success weights sum to global" ~count:30
    QCheck2.Gen.(pair (int_range 1 5) (int_range 0 1000))
    (fun (n, raw) ->
      let ind = Chains.Scu_chain.Individual.make ~n in
      let i = raw mod ind.chain.size in
      let total =
        List.fold_left
          (fun acc proc -> acc +. Chains.Scu_chain.Individual.success_weight ind ~proc i)
          0.
          (List.init n (fun p -> p))
      in
      Float.abs (total -. Chains.Scu_chain.Individual.any_success_weight ind i) < 1e-12)

let prop_parallel_occupancy_sums =
  prop "parallel system states sum to n" ~count:30
    QCheck2.Gen.(tup3 (int_range 1 4) (int_range 1 4) (int_range 0 1000))
    (fun (n, q, raw) ->
      let sys = Chains.Parallel_chain.System.make ~n ~q in
      let i = raw mod sys.chain.size in
      Array.fold_left ( + ) 0 (sys.decode i) = n)

let () =
  Alcotest.run "chains"
    [
      ( "scu (§6.1)",
        [
          Alcotest.test_case "state counts" `Quick test_scu_sizes;
          Alcotest.test_case "rows are distributions" `Quick test_scu_chains_valid;
          Alcotest.test_case "ergodic (Lemma 3)" `Quick test_scu_ergodic_lemma3;
          Alcotest.test_case "lifting (Lemmas 4-5)" `Quick test_scu_lifting_lemma5;
          Alcotest.test_case "fiber symmetry (Lemma 6)" `Quick
            test_scu_fiber_symmetry_lemma6;
          Alcotest.test_case "Figure 1 hand check" `Quick test_scu_figure1_two_process;
          Alcotest.test_case "W_i = nW (Lemma 7)" `Quick test_scu_individual_latency_lemma7;
          Alcotest.test_case "W ~ sqrt n (Theorem 5)" `Slow test_scu_latency_sqrt_growth;
          Alcotest.test_case "n=1 exact" `Quick test_scu_n1_exact;
        ] );
      ( "parallel (§6.2)",
        [
          Alcotest.test_case "state counts" `Quick test_parallel_sizes;
          Alcotest.test_case "uniform stationary" `Quick test_parallel_individual_uniform;
          Alcotest.test_case "period = q (Lemma 3 caveat)" `Quick test_parallel_periodicity;
          Alcotest.test_case "lifting (Lemma 10)" `Quick test_parallel_lifting_lemma10;
          Alcotest.test_case "W=q, W_i=nq (Lemma 11)" `Quick test_parallel_latency_lemma11;
        ] );
      ( "counter (§7)",
        [
          Alcotest.test_case "state counts" `Quick test_counter_sizes;
          Alcotest.test_case "ergodic (Lemma 13)" `Quick test_counter_ergodic_lemma13;
          Alcotest.test_case "lifting (Lemma 13)" `Quick test_counter_lifting_lemma13;
          Alcotest.test_case "W_i = nW (Lemma 14)" `Quick test_counter_fairness_lemma14;
          Alcotest.test_case "Z recurrence = W <= 2 sqrt n (Lemma 12)" `Quick
            test_counter_z_recurrence_lemma12;
          Alcotest.test_case "Ramanujan asymptotics (Cor 3)" `Quick
            test_counter_ramanujan_corollary3;
          Alcotest.test_case "Q small values" `Quick test_ramanujan_q_small_values;
          Alcotest.test_case "Q+1 = Z(n-1)" `Quick test_ramanujan_matches_z;
        ] );
      ( "scaling (sparse + mean field)",
        [
          Alcotest.test_case "sparse = dense chain" `Quick
            test_scu_sparse_matches_dense;
          Alcotest.test_case "arithmetic index roundtrip" `Quick
            test_scu_index_roundtrip;
          Alcotest.test_case "sparse latency = dense latency" `Quick
            test_scu_sparse_latency_agrees;
          Alcotest.test_case "lump individual -> system (Lemmas 4-6)" `Quick
            test_scu_lump_reproduces_system;
          Alcotest.test_case "mean-field fixed point" `Quick
            test_meanfield_fixed_point;
          Alcotest.test_case "mean-field latency closed form" `Quick
            test_meanfield_latency_closed_form;
          Alcotest.test_case "fluctuation correction sqrt(pi/2)" `Quick
            test_fluctuation_correction_ratio;
        ] );
      ( "predictions",
        [
          Alcotest.test_case "closed forms" `Quick test_predict_shapes;
          Alcotest.test_case "fitted alpha" `Quick test_predict_fitted_alpha;
        ] );
      ( "properties",
        [
          prop_scu_encode_roundtrip;
          prop_counter_encode_roundtrip;
          prop_scu_weights_consistent;
          prop_parallel_occupancy_sums;
        ] );
    ]
