(* Tests for the SCU algorithm library: functional correctness of
   every simulated data structure (counter permutation property, stack
   and queue conservation, RCU snapshot consistency, universal
   construction vs sequential witness), progress properties (lock-
   freedom under adversaries, wait-freedom of the helping counter),
   and the Lemma 2 starvation behaviour of the unbounded algorithm. *)

open Core

let uniform = Sched.Scheduler.uniform

let run ?seed ?crash_plan ?max_steps ~n ~stop spec =
  let open Sim.Executor.Config in
  let config =
    default
    |> with_seed (Option.value seed ~default:default.seed)
    |> with_faults
         (match crash_plan with
         | None -> Sched.Fault_plan.none
         | Some p -> Sched.Fault_plan.of_crash_plan p)
    |> with_max_steps (Option.value max_steps ~default:default.max_steps)
  in
  Sim.Executor.exec ~config ~scheduler:uniform ~n ~stop spec

(* -- CAS counter ---------------------------------------------------- *)

let test_counter_value_equals_completions () =
  let c = Scu.Counter.make ~n:4 in
  let r = run ~n:4 ~stop:(Completions 500) c.spec in
  Alcotest.(check int) "register = completions"
    (Sim.Metrics.total_completions r.metrics)
    (Scu.Counter.value c c.spec.memory)

let test_counter_values_form_permutation () =
  let n = 5 and ops = 40 in
  let c = Scu.Counter.make_logged ~n ~ops_per_process:ops in
  let r = run ~n ~stop:(Steps 10_000_000) c.spec in
  Alcotest.(check bool) "all processes finished" true r.stopped_early;
  let all =
    List.concat_map (fun i -> Scu.Counter.logged_values c c.spec.memory i)
      (List.init n (fun i -> i))
  in
  let sorted = List.sort compare all in
  Alcotest.(check (list int)) "fetch-and-inc returns exactly 0..k-1"
    (List.init (n * ops) (fun i -> i))
    sorted

let test_counter_per_process_monotone () =
  let n = 3 and ops = 50 in
  let c = Scu.Counter.make_logged ~n ~ops_per_process:ops in
  ignore (run ~n ~stop:(Steps 10_000_000) c.spec);
  for i = 0 to n - 1 do
    let vs = Scu.Counter.logged_values c c.spec.memory i in
    let rec monotone = function
      | a :: (b :: _ as rest) -> a < b && monotone rest
      | _ -> true
    in
    Alcotest.(check bool)
      (Printf.sprintf "proc %d obtains increasing values" i)
      true (monotone vs)
  done

let test_counter_lockfree_under_starver () =
  (* Minimal progress must survive a starvation adversary: the starved
     process never completes, everyone else does. *)
  let n = 4 in
  let c = Scu.Counter.make ~n in
  let r =
    Sim.Executor.exec
      ~scheduler:(Sched.Scheduler.starver ~victim:0)
      ~n ~stop:(Steps 10_000) c.spec
  in
  Alcotest.(check int) "victim starved" 0 (Sim.Metrics.completions_of r.metrics 0);
  Alcotest.(check bool) "system progressed" true
    (Sim.Metrics.total_completions r.metrics > 1_000)

let test_counter_crash_does_not_block () =
  (* Lock-freedom under crashes: kill 3 of 4 processes mid-run; the
     survivor continues to complete operations. *)
  let n = 4 in
  let c = Scu.Counter.make ~n in
  let crash_plan = Sched.Crash_plan.of_list [ (100, 0); (200, 1); (300, 2) ] in
  let r = run ~crash_plan ~n ~stop:(Steps 20_000) c.spec in
  Alcotest.(check bool) "survivor progressed" true
    (Sim.Metrics.completions_of r.metrics 3 > 5_000)

(* -- Augmented-CAS counter (Algorithm 5) ---------------------------- *)

let test_counter_aug_counts () =
  let c = Scu.Counter_aug.make ~n:6 in
  let r = run ~n:6 ~stop:(Completions 2_000) c.spec in
  Alcotest.(check int) "register = completions"
    (Sim.Metrics.total_completions r.metrics)
    (Scu.Counter_aug.value c c.spec.memory)

let test_counter_aug_solo_alternates () =
  (* A single process never fails: every operation is exactly one
     step, so system latency is 1. *)
  let c = Scu.Counter_aug.make ~n:1 in
  let r = run ~n:1 ~stop:(Steps 1_000) c.spec in
  Alcotest.(check int) "one op per step" 1_000 (Sim.Metrics.total_completions r.metrics)

(* -- SCU(q, s) pattern ---------------------------------------------- *)

let test_scu_pattern_proposals_unique () =
  let seen = Hashtbl.create 64 in
  for id = 0 to 3 do
    for op = 0 to 9 do
      let v = Scu.Scu_pattern.proposal ~n:4 ~id ~op_index:op in
      Alcotest.(check bool) "positive" true (v > 0);
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ()
    done
  done

let test_scu_pattern_progress () =
  let p = Scu.Scu_pattern.make ~n:4 ~q:3 ~s:2 in
  let r = run ~n:4 ~stop:(Steps 50_000) p.spec in
  Alcotest.(check bool) "completes operations" true
    (Sim.Metrics.total_completions r.metrics > 1_000);
  (* The decision register holds the winner's latest proposal. *)
  Alcotest.(check bool) "R was written" true
    (Sim.Memory.get p.spec.memory p.decision_register > 0)

let test_scu_pattern_q0_s1_matches_counter_cost () =
  (* SCU(0,1) and the CAS counter have identical step structure, so
     their system latencies agree closely under the same scheduler. *)
  let n = 8 in
  let p = Scu.Scu_pattern.make ~n ~q:0 ~s:1 in
  let c = Scu.Counter.make ~n in
  let rp = run ~seed:5 ~n ~stop:(Steps 400_000) p.spec in
  let rc = run ~seed:6 ~n ~stop:(Steps 400_000) c.spec in
  let wp = Sim.Metrics.mean_system_latency rp.metrics in
  let wc = Sim.Metrics.mean_system_latency rc.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "latencies agree (%.3f vs %.3f)" wp wc)
    true
    (Float.abs (wp -. wc) /. wc < 0.05)

let test_scu_pattern_invalid_args () =
  Alcotest.check_raises "s = 0" (Invalid_argument "Scu_pattern.make: s must be >= 1")
    (fun () -> ignore (Scu.Scu_pattern.make ~n:2 ~q:0 ~s:0));
  Alcotest.check_raises "q < 0" (Invalid_argument "Scu_pattern.make: q must be >= 0")
    (fun () -> ignore (Scu.Scu_pattern.make ~n:2 ~q:(-1) ~s:1))

(* -- Parallel code (Algorithm 4) ------------------------------------ *)

let test_parallel_code_exact_rate () =
  (* Lemma 11 in the simulator: with q steps per op, completions =
     steps / q exactly in aggregate (up to per-process remainders). *)
  let n = 5 and q = 4 in
  let p = Scu.Parallel_code.make ~n ~q in
  let r = run ~n ~stop:(Steps 100_000) p.spec in
  let c = Sim.Metrics.total_completions r.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "completions %d ~ steps/q %d" c (100_000 / q))
    true
    (abs (c - (100_000 / q)) <= n)

(* -- Treiber stack --------------------------------------------------- *)

let multiset_of list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace tbl v (1 + Option.value (Hashtbl.find_opt tbl v) ~default:0))
    list;
  tbl

let multisets_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold (fun k v acc -> acc && Hashtbl.find_opt b k = Some v) a true

let test_treiber_conservation () =
  (* pushed = popped (multiset) + remaining contents. *)
  let n = 4 and ops = 100 in
  let s = Scu.Treiber.make_logged ~n ~ops_per_process:ops () in
  let r = run ~n ~stop:(Steps 10_000_000) s.spec in
  Alcotest.(check bool) "finished" true r.stopped_early;
  let ids = List.init n (fun i -> i) in
  let pushed = List.concat_map (fun i -> Scu.Treiber.pushes s s.spec.memory i) ids in
  let popped =
    List.concat_map
      (fun i ->
        List.filter_map
          (function Scu.Treiber.Empty -> None | Popped v -> Some v)
          (Scu.Treiber.pops s s.spec.memory i))
      ids
  in
  let remaining = Scu.Treiber.drain s s.spec.memory in
  Alcotest.(check bool) "conservation" true
    (multisets_equal (multiset_of pushed) (multiset_of (popped @ remaining)));
  (* No value is popped twice. *)
  let sorted = List.sort compare popped in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | _ -> true
  in
  Alcotest.(check bool) "pops unique" true (no_dup sorted)

let test_treiber_lifo_sequential () =
  (* With one process the stack is exactly LIFO. *)
  let s = Scu.Treiber.make_logged ~push_ratio:1.0 ~n:1 ~ops_per_process:10 () in
  ignore (run ~n:1 ~stop:(Steps 100_000) s.spec);
  let pushed = Scu.Treiber.pushes s s.spec.memory 0 in
  let contents = Scu.Treiber.drain s s.spec.memory in
  Alcotest.(check (list int)) "drain reverses pushes" (List.rev pushed) contents

let test_treiber_empty_pop () =
  let s = Scu.Treiber.make_logged ~push_ratio:0.0 ~n:2 ~ops_per_process:5 () in
  ignore (run ~n:2 ~stop:(Steps 100_000) s.spec);
  List.iter
    (fun i ->
      List.iter
        (function
          | Scu.Treiber.Empty -> ()
          | Popped v -> Alcotest.failf "popped %d from an empty stack" v)
        (Scu.Treiber.pops s s.spec.memory i))
    [ 0; 1 ]

(* -- Michael-Scott queue --------------------------------------------- *)

let test_msqueue_conservation () =
  let n = 4 and ops = 100 in
  let q = Scu.Msqueue.make_logged ~n ~ops_per_process:ops () in
  let r = run ~n ~stop:(Steps 10_000_000) q.spec in
  Alcotest.(check bool) "finished" true r.stopped_early;
  let ids = List.init n (fun i -> i) in
  let enq = List.concat_map (fun i -> Scu.Msqueue.enqueues q q.spec.memory i) ids in
  let deq =
    List.concat_map
      (fun i ->
        List.filter_map
          (function Scu.Msqueue.Empty -> None | Dequeued v -> Some v)
          (Scu.Msqueue.dequeues q q.spec.memory i))
      ids
  in
  let remaining = Scu.Msqueue.contents q q.spec.memory in
  Alcotest.(check bool) "conservation" true
    (multisets_equal (multiset_of enq) (multiset_of (deq @ remaining)))

let test_msqueue_fifo_sequential () =
  let q = Scu.Msqueue.make_logged ~enqueue_ratio:1.0 ~n:1 ~ops_per_process:8 () in
  ignore (run ~n:1 ~stop:(Steps 100_000) q.spec);
  let enq = Scu.Msqueue.enqueues q q.spec.memory 0 in
  Alcotest.(check (list int)) "FIFO order" enq (Scu.Msqueue.contents q q.spec.memory)

let test_msqueue_per_producer_order () =
  (* MS queue preserves each producer's order: the subsequence of one
     producer's values among all dequeues is increasing (producers
     enqueue increasing values). *)
  let n = 4 and ops = 150 in
  let q = Scu.Msqueue.make_logged ~n ~ops_per_process:ops () in
  ignore (run ~n ~stop:(Steps 10_000_000) q.spec);
  let ids = List.init n (fun i -> i) in
  let deq_all =
    List.concat_map
      (fun i ->
        List.filter_map
          (function Scu.Msqueue.Empty -> None | Dequeued v -> Some v)
          (Scu.Msqueue.dequeues q q.spec.memory i))
      ids
  in
  (* Values are op*n + id + 1, so v mod n identifies the producer...
     shifted by 1: producer = (v - 1) mod n. *)
  List.iter
    (fun producer ->
      let seq = List.filter (fun v -> (v - 1) mod n = producer) deq_all in
      ignore seq)
    ids;
  (* Per-consumer dequeues of a single producer must be increasing. *)
  List.iter
    (fun consumer ->
      let deqs =
        List.filter_map
          (function Scu.Msqueue.Empty -> None | Dequeued v -> Some v)
          (Scu.Msqueue.dequeues q q.spec.memory consumer)
      in
      List.iter
        (fun producer ->
          let mine = List.filter (fun v -> (v - 1) mod n = producer) deqs in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          Alcotest.(check bool) "per-producer order at one consumer" true
            (increasing mine))
        ids)
    ids

(* -- Elimination stack -------------------------------------------------- *)

let test_elimination_happens_under_contention () =
  let n = 16 in
  let s = Scu.Elimination_stack.make ~n () in
  let r = run ~seed:23 ~n ~stop:(Steps 300_000) s.spec in
  Alcotest.(check bool) "operations complete" true
    (Sim.Metrics.total_completions r.metrics > 10_000);
  Alcotest.(check bool) "pairs eliminated" true
    (Scu.Elimination_stack.eliminated_pairs s s.spec.memory > 100)

let test_elimination_values_distinct () =
  let n = 8 in
  let s = Scu.Elimination_stack.make ~push_ratio:0.7 ~n () in
  ignore (run ~seed:24 ~n ~stop:(Steps 200_000) s.spec);
  let contents = Scu.Elimination_stack.drain s s.spec.memory in
  let sorted = List.sort compare contents in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | _ -> true
  in
  Alcotest.(check bool) "drained values distinct" true (distinct sorted);
  List.iter
    (fun v -> Alcotest.(check bool) "values well-formed" true (v > 0))
    contents

let test_elimination_beats_plain_treiber () =
  let n = 32 in
  let w spec = Sim.Metrics.mean_system_latency (run ~seed:25 ~n ~stop:(Steps 400_000) spec).metrics in
  let plain = w (Scu.Treiber.make ~n ()).spec in
  let elim = w (Scu.Elimination_stack.make ~n ()).spec in
  Alcotest.(check bool)
    (Printf.sprintf "elimination helps at n=32 (%.2f < %.2f)" elim plain)
    true (elim < plain)

let test_elimination_validation () =
  Alcotest.check_raises "poll >= 1"
    (Invalid_argument "Elimination_stack.make: poll must be >= 1") (fun () ->
      ignore (Scu.Elimination_stack.make ~poll:0 ~n:2 ()))

(* -- RCU -------------------------------------------------------------- *)

let test_rcu_no_torn_reads () =
  let r = Scu.Rcu.make ~n:6 ~readers:4 ~block_size:8 in
  let res = run ~n:6 ~stop:(Steps 300_000) r.spec in
  Alcotest.(check bool) "no torn snapshot" false (Scu.Rcu.torn r r.spec.memory);
  Alcotest.(check bool) "updates happened" true (Scu.Rcu.generation r r.spec.memory > 100);
  Alcotest.(check bool) "reads happened" true
    (Sim.Metrics.completions_of res.metrics 0 > 1_000)

let test_rcu_readers_wait_free () =
  (* Readers complete even under an adversary that starves one updater
     (readers never contend). *)
  let r = Scu.Rcu.make ~n:3 ~readers:2 ~block_size:4 in
  let res =
    Sim.Executor.exec
      ~scheduler:(Sched.Scheduler.starver ~victim:2)
      ~n:3 ~stop:(Steps 20_000) r.spec
  in
  Alcotest.(check bool) "reader 0 progressed" true
    (Sim.Metrics.completions_of res.metrics 0 > 500);
  Alcotest.(check int) "starved updater" 0 (Sim.Metrics.completions_of res.metrics 2)

(* -- Universal construction ------------------------------------------ *)

let test_universal_counter_object () =
  (* A counter as the sequential object. *)
  let apply ~proc:_ ~op_index:_ st = [| st.(0) + 1 |] in
  let u = Scu.Universal.make ~n:4 ~init:[| 0 |] ~apply in
  let r = run ~n:4 ~stop:(Completions 800) u.spec in
  Alcotest.(check int) "state = completions"
    (Sim.Metrics.total_completions r.metrics)
    (Scu.Universal.state u u.spec.memory).(0)

let test_universal_matches_sequential_witness () =
  (* Implement a 2-cell object: cell 0 counts ops, cell 1 accumulates
     proc ids; compare against a sequential replay of the same
     multiset of operations.  Because each op is commutative here, any
     linearization gives the same result — the test checks that the
     concurrent execution applied each op exactly once. *)
  let apply ~proc ~op_index:_ st = [| st.(0) + 1; st.(1) + proc + 1 |] in
  let n = 3 in
  let u = Scu.Universal.make ~n ~init:[| 0; 0 |] ~apply in
  let r = run ~n ~stop:(Completions 300) u.spec in
  let per_proc = List.init n (fun i -> Sim.Metrics.completions_of r.metrics i) in
  let ops =
    List.concat (List.mapi (fun proc k -> List.init k (fun j -> (proc, j))) per_proc)
  in
  let witness = Scu.Universal.sequential_witness ~init:[| 0; 0 |] ~apply ops in
  let final = Scu.Universal.state u u.spec.memory in
  Alcotest.(check int) "op count" witness.(0) final.(0);
  Alcotest.(check int) "weighted sum" witness.(1) final.(1)

(* -- Obstruction-free counter ------------------------------------------ *)

let test_of_livelocks_under_round_robin () =
  (* Lockstep scheduling makes every process see a raised flag forever:
     zero completions — legal for obstruction-freedom, impossible for
     lock-freedom. *)
  let n = 2 in
  let c = Scu.Obstruction_free.make ~n in
  let r =
    Sim.Executor.exec
      ~scheduler:(Sched.Scheduler.round_robin ())
      ~n ~stop:(Steps 50_000) c.spec
  in
  Alcotest.(check int) "livelock" 0 (Sim.Metrics.total_completions r.metrics)

let test_of_progresses_with_isolation () =
  let n = 4 in
  let c = Scu.Obstruction_free.make ~n in
  let r =
    Sim.Executor.exec
      ~scheduler:(Sched.Scheduler.quantum ~length:((2 * n) + 2))
      ~n ~stop:(Steps 100_000) c.spec
  in
  Alcotest.(check bool) "progress under isolation" true
    (Sim.Metrics.total_completions r.metrics > 1_000);
  (* The register may lead by in-flight operations (incremented but
     not yet past the flag-clearing step). *)
  let v = Scu.Obstruction_free.value c c.spec.memory in
  let done_ = Sim.Metrics.total_completions r.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "value %d within [completions %d, +n]" v done_)
    true
    (v >= done_ && v <= done_ + n)

let test_of_progresses_under_uniform () =
  (* Theorem 3's reasoning extends: solo runs keep happening under any
     stochastic scheduler, so the OF counter completes w.p. 1. *)
  let n = 3 in
  let c = Scu.Obstruction_free.make ~n in
  let r =
    Sim.Executor.exec
      ~config:Sim.Executor.Config.(default |> with_seed 3)
      ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps 300_000) c.spec
  in
  Alcotest.(check bool) "stochastic progress" true
    (Sim.Metrics.total_completions r.metrics > 100)

(* -- Wait-free universal construction --------------------------------- *)

let test_wf_universal_counter () =
  let apply ~proc:_ ~op_index:_ st = [| st.(0) + 1 |] in
  let u = Scu.Waitfree_universal.make ~n:4 ~init:[| 0 |] ~apply in
  let r = run ~n:4 ~stop:(Steps 200_000) u.spec in
  let v = (Scu.Waitfree_universal.state u u.spec.memory).(0) in
  let completions = Sim.Metrics.total_completions r.metrics in
  (* Applied requests may lead observed completions by in-flight ops. *)
  Alcotest.(check bool)
    (Printf.sprintf "state %d in [completions %d, +n]" v completions)
    true
    (v >= completions && v <= completions + 4);
  Alcotest.(check int) "applied sums to state" v
    (Array.fold_left ( + ) 0 (Scu.Waitfree_universal.applied u u.spec.memory))

let test_wf_universal_matches_lockfree_semantics () =
  (* Same object implemented by both constructions: identical final
     state given identical per-process operation counts (the object
     here is commutative, so any linearization agrees). *)
  let apply ~proc ~op_index:_ st =
    let nxt = Array.copy st in
    nxt.(0) <- st.(0) + 1;
    nxt.(1) <- st.(1) + proc;
    nxt
  in
  let n = 3 in
  let wf = Scu.Waitfree_universal.make ~n ~init:[| 0; 0 |] ~apply in
  let r = run ~n ~stop:(Completions 500) wf.spec in
  let per = List.init n (fun i -> Sim.Metrics.completions_of r.metrics i) in
  (* The published state may include helped-but-not-yet-observed ops;
     recompute the witness from the *applied* counts instead. *)
  let applied = Scu.Waitfree_universal.applied wf wf.spec.memory in
  ignore per;
  let ops =
    List.concat
      (List.init n (fun proc -> List.init applied.(proc) (fun k -> (proc, k))))
  in
  let witness = Scu.Universal.sequential_witness ~init:[| 0; 0 |] ~apply ops in
  Alcotest.(check bool) "state = witness" true
    (Scu.Waitfree_universal.state wf wf.spec.memory = witness)

let test_wf_universal_helps_starved_victim () =
  let apply ~proc:_ ~op_index:_ st = [| st.(0) + 1 |] in
  let u = Scu.Waitfree_universal.make ~n:4 ~init:[| 0 |] ~apply in
  let sched =
    Sched.Scheduler.with_weak_fairness ~theta:0.02 (Sched.Scheduler.starver ~victim:0)
  in
  let r =
    Sim.Executor.exec
      ~config:Sim.Executor.Config.(default |> with_seed 5)
      ~scheduler:sched ~n:4 ~stop:(Steps 300_000) u.spec
  in
  Alcotest.(check bool) "victim helped" true
    (Sim.Metrics.completions_of r.metrics 0 > 100)

(* -- Unbounded algorithm (Lemma 2) ----------------------------------- *)

let test_unbounded_first_winner_monopolizes () =
  (* Algorithm 1: after the first successful CAS, the winner (which
     terminated) leaves the others spinning in enormous penalty loops;
     within any reasonable budget no second process completes.  With n
     = 8, the second success requires surviving a ~n^2 = 64-read
     penalty race, which has probability < (1 - 1/n)^{n^2} ~ e^{-n}. *)
  let n = 8 in
  let u = Scu.Unbounded.make ~n () in
  let r = run ~seed:31 ~n ~stop:(Steps 2_000_000) u.spec in
  let winners =
    List.length
      (List.filter
         (fun i -> Sim.Metrics.completions_of r.metrics i > 0)
         (List.init n (fun i -> i)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "at most 2 of %d processes ever won (got %d)" n winners)
    true (winners <= 2);
  Alcotest.(check bool) "at least one winner" true (winners >= 1)

let test_unbounded_bounded_variant_all_complete () =
  (* With the penalty capped at 0 the algorithm is a bounded lock-free
     counter (the augmented-CAS counter, §7): everyone keeps
     completing (Theorem 3's premise). *)
  let n = 6 in
  let u = Scu.Unbounded.make ~penalty_cap:0 ~n () in
  let r = run ~n ~stop:(Steps 100_000) u.spec in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "process %d completes operations" i)
        true
        (Sim.Metrics.completions_of r.metrics i > 100))
    (List.init n (fun i -> i))

(* -- Wait-free helping counter ---------------------------------------- *)

let test_waitfree_counter_counts () =
  let n = 4 in
  let w = Scu.Waitfree_counter.make ~n in
  let r = run ~n ~stop:(Steps 200_000) w.spec in
  let value = Scu.Waitfree_counter.value w w.spec.memory in
  let completions = Sim.Metrics.total_completions r.metrics in
  (* Applied ops may lead observed completions by at most n in-flight
     requests. *)
  Alcotest.(check bool)
    (Printf.sprintf "value %d within [completions, completions+n]" value)
    true
    (value >= completions && value <= completions + n);
  let applied = Scu.Waitfree_counter.applied w w.spec.memory in
  Alcotest.(check int) "applied sums to value" value (Array.fold_left ( + ) 0 applied)

let test_waitfree_counter_bounded_individual_progress () =
  (* The wait-free property under the uniform scheduler, quantified:
     no process's individual latency explodes relative to others.
     Compare max individual gap against the lock-free counter under an
     adversary: the helping counter keeps the starved process moving
     as long as the system moves. *)
  let n = 4 in
  let w = Scu.Waitfree_counter.make ~n in
  let r =
    Sim.Executor.exec
      ~scheduler:(Sched.Scheduler.with_weak_fairness ~theta:0.02
                    (Sched.Scheduler.starver ~victim:0))
      ~n ~stop:(Steps 400_000) w.spec
  in
  (* Even the starved process completes operations (helped by others). *)
  Alcotest.(check bool) "starved process helped" true
    (Sim.Metrics.completions_of r.metrics 0 > 100)

let test_lockfree_starved_process_stalls_in_contrast () =
  (* Same adversary, lock-free counter: the victim only completes when
     its theta-lottery ticks land just right — far fewer completions
     than the helped wait-free version. *)
  let n = 4 in
  let c = Scu.Counter.make ~n in
  let w = Scu.Waitfree_counter.make ~n in
  let sched () =
    Sched.Scheduler.with_weak_fairness ~theta:0.02 (Sched.Scheduler.starver ~victim:0)
  in
  let rc =
    Sim.Executor.exec ~scheduler:(sched ()) ~n ~stop:(Steps 400_000) c.spec
  in
  let rw =
    Sim.Executor.exec ~scheduler:(sched ()) ~n ~stop:(Steps 400_000) w.spec
  in
  let lf = Sim.Metrics.completions_of rc.metrics 0 in
  let wf = Sim.Metrics.completions_of rw.metrics 0 in
  Alcotest.(check bool)
    (Printf.sprintf "wait-free victim (%d ops) >= lock-free victim (%d ops)" wf lf)
    true (wf >= lf)

(* -- Constructor validation --------------------------------------------- *)

let test_constructor_validation () =
  Alcotest.check_raises "rcu all readers"
    (Invalid_argument "Rcu.make: need 0 <= readers < n") (fun () ->
      ignore (Scu.Rcu.make ~n:3 ~readers:3 ~block_size:2));
  Alcotest.check_raises "rcu empty block"
    (Invalid_argument "Rcu.make: block_size must be >= 1") (fun () ->
      ignore (Scu.Rcu.make ~n:3 ~readers:1 ~block_size:0));
  Alcotest.check_raises "treiber ratio"
    (Invalid_argument "Treiber.make: push_ratio out of [0,1]") (fun () ->
      ignore (Scu.Treiber.make ~push_ratio:1.5 ~n:2 ()));
  Alcotest.check_raises "msqueue ratio"
    (Invalid_argument "Msqueue: enqueue_ratio out of [0,1]") (fun () ->
      ignore (Scu.Msqueue.make ~enqueue_ratio:(-0.1) ~n:2 ()));
  Alcotest.check_raises "sharded zero shards"
    (Invalid_argument "Sharded_counter.make: shards must be >= 1") (fun () ->
      ignore (Scu.Sharded_counter.make ~n:2 ~shards:0));
  Alcotest.check_raises "counter logged zero ops"
    (Invalid_argument "Counter.make_logged: ops must be positive") (fun () ->
      ignore (Scu.Counter.make_logged ~n:2 ~ops_per_process:0));
  Alcotest.check_raises "universal empty state"
    (Invalid_argument "Universal.make: empty initial state") (fun () ->
      ignore (Scu.Universal.make ~n:2 ~init:[||] ~apply:(fun ~proc:_ ~op_index:_ s -> s)))

let test_universal_rejects_resizing_apply () =
  let u =
    Scu.Universal.make ~n:1 ~init:[| 0 |]
      ~apply:(fun ~proc:_ ~op_index:_ _ -> [| 1; 2 |])
  in
  Alcotest.check_raises "apply changed size"
    (Invalid_argument "Universal: apply changed the state size") (fun () ->
      ignore (run ~n:1 ~stop:(Steps 10) u.spec))

let prop_scu_proposals_unique =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"SCU proposals are globally unique" ~count:300
       QCheck2.Gen.(
         tup2 (int_range 1 64)
           (tup2 (pair (int_range 0 63) (int_range 0 1000))
              (pair (int_range 0 63) (int_range 0 1000))))
       (fun (n, ((id1, op1), (id2, op2))) ->
         QCheck2.assume (id1 < n && id2 < n);
         let p1 = Scu.Scu_pattern.proposal ~n ~id:id1 ~op_index:op1 in
         let p2 = Scu.Scu_pattern.proposal ~n ~id:id2 ~op_index:op2 in
         if id1 = id2 && op1 = op2 then p1 = p2 else p1 <> p2))

(* -- Ticket lock (blocking comparison point) ---------------------------- *)

let test_ticket_lock_counts () =
  let n = 4 in
  let t = Scu.Ticket_lock.make ~n in
  let r = run ~n ~stop:(Steps 100_000) t.spec in
  Alcotest.(check int) "counter = completions"
    (Sim.Metrics.total_completions r.metrics)
    (Scu.Ticket_lock.value t t.spec.memory);
  Alcotest.(check bool) "made progress" true
    (Sim.Metrics.total_completions r.metrics > 1_000)

let test_ticket_lock_fifo_fair () =
  (* Starvation-freedom under the uniform scheduler: the FIFO hand-off
     gives every process the same throughput. *)
  let n = 4 in
  let t = Scu.Ticket_lock.make ~n in
  let r = run ~n ~stop:(Steps 400_000) t.spec in
  let counts = List.init n (fun i -> Sim.Metrics.completions_of r.metrics i) in
  let mn = List.fold_left min max_int counts and mx = List.fold_left max 0 counts in
  Alcotest.(check bool)
    (Printf.sprintf "balanced (%d..%d)" mn mx)
    true
    (float_of_int (mx - mn) /. float_of_int mx < 0.05)

let test_ticket_lock_blocks_on_crash () =
  (* The defining weakness of blocking code: crash one process and the
     whole system eventually halts (the dead process's ticket is never
     served). *)
  let n = 4 in
  let t = Scu.Ticket_lock.make ~n in
  let crash_plan = Sched.Crash_plan.of_list [ (10_000, 0) ] in
  let r = run ~crash_plan ~n ~stop:(Steps 200_000) t.spec in
  let total = Sim.Metrics.total_completions r.metrics in
  (* A second run truncated at the crash point: afterwards, only a few
     queued operations can still drain. *)
  let t2 = Scu.Ticket_lock.make ~n in
  let r2 = run ~crash_plan ~n ~stop:(Steps 10_000) t2.spec in
  let before = Sim.Metrics.total_completions r2.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "halted after crash (%d before, %d total)" before total)
    true
    (total - before <= n)

(* -- TAS lock (deadlock-free, not starvation-free) ---------------------- *)

let test_tas_lock_counts () =
  let n = 4 in
  let t = Scu.Tas_lock.make ~n in
  let r = run ~n ~stop:(Steps 100_000) t.spec in
  (* The holder may have incremented but not yet released when the
     run is cut, so the counter can lead completions by one. *)
  let v = Scu.Tas_lock.value t t.spec.memory in
  let done_ = Sim.Metrics.total_completions r.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "counter %d within [completions %d, +1]" v done_)
    true
    (v >= done_ && v <= done_ + 1);
  Alcotest.(check bool) "progressed" true (done_ > 1_000)

let test_tas_lock_fair_under_uniform () =
  (* The abstract's claim: deadlock-free behaves starvation-free under
     the stochastic scheduler. *)
  let n = 4 in
  let t = Scu.Tas_lock.make ~n in
  let r = run ~seed:8 ~n ~stop:(Steps 400_000) t.spec in
  let counts = List.init n (fun i -> Sim.Metrics.completions_of r.metrics i) in
  let mn = List.fold_left min max_int counts and mx = List.fold_left max 0 counts in
  Alcotest.(check bool)
    (Printf.sprintf "balanced (%d..%d)" mn mx)
    true
    (float_of_int (mx - mn) /. float_of_int mx < 0.05)

let test_tas_lock_holder_observable () =
  let t = Scu.Tas_lock.make ~n:2 in
  Alcotest.(check (option int)) "initially free" None
    (Scu.Tas_lock.holder t t.spec.memory)

(* -- Sharded counter (extension) --------------------------------------- *)

let test_sharded_counter_conserves () =
  let n = 8 in
  let c = Scu.Sharded_counter.make ~n ~shards:4 in
  let r = run ~n ~stop:(Completions 2_000) c.spec in
  Alcotest.(check int) "sum of shards = completions"
    (Sim.Metrics.total_completions r.metrics)
    (Scu.Sharded_counter.value c c.spec.memory)

let test_sharded_counter_reduces_latency () =
  let n = 16 in
  let latency shards =
    let c = Scu.Sharded_counter.make ~n ~shards in
    let r = run ~seed:17 ~n ~stop:(Steps 400_000) c.spec in
    Sim.Metrics.mean_system_latency r.metrics
  in
  let w1 = latency 1 and w16 = latency 16 in
  Alcotest.(check bool)
    (Printf.sprintf "sharding helps (%.2f -> %.2f)" w1 w16)
    true
    (w16 < 0.6 *. w1);
  (* k = n approaches the uncontended floor of 2 steps/op. *)
  Alcotest.(check bool)
    (Printf.sprintf "near the 2-step floor (%.2f)" w16)
    true (w16 < 3.5)

let test_sharded_single_shard_is_plain_counter () =
  let n = 8 in
  let sharded = Scu.Sharded_counter.make ~n ~shards:1 in
  let plain = Scu.Counter.make ~n in
  let ws =
    Sim.Metrics.mean_system_latency
      (run ~seed:1 ~n ~stop:(Steps 400_000) sharded.spec).metrics
  in
  let wp =
    Sim.Metrics.mean_system_latency
      (run ~seed:2 ~n ~stop:(Steps 400_000) plain.spec).metrics
  in
  Alcotest.(check bool)
    (Printf.sprintf "same latency (%.3f vs %.3f)" ws wp)
    true
    (Float.abs (ws -. wp) /. wp < 0.05)

let () =
  Alcotest.run "scu"
    [
      ( "cas counter",
        [
          Alcotest.test_case "value = completions" `Quick
            test_counter_value_equals_completions;
          Alcotest.test_case "values form a permutation" `Quick
            test_counter_values_form_permutation;
          Alcotest.test_case "per-process monotone" `Quick test_counter_per_process_monotone;
          Alcotest.test_case "lock-free under starver" `Quick
            test_counter_lockfree_under_starver;
          Alcotest.test_case "crashes don't block" `Quick test_counter_crash_does_not_block;
        ] );
      ( "augmented counter",
        [
          Alcotest.test_case "counts" `Quick test_counter_aug_counts;
          Alcotest.test_case "solo = 1 step/op" `Quick test_counter_aug_solo_alternates;
        ] );
      ( "scu pattern",
        [
          Alcotest.test_case "proposals unique" `Quick test_scu_pattern_proposals_unique;
          Alcotest.test_case "progress" `Quick test_scu_pattern_progress;
          Alcotest.test_case "SCU(0,1) = counter cost" `Quick
            test_scu_pattern_q0_s1_matches_counter_cost;
          Alcotest.test_case "invalid args" `Quick test_scu_pattern_invalid_args;
        ] );
      ( "parallel code",
        [ Alcotest.test_case "exact rate" `Quick test_parallel_code_exact_rate ] );
      ( "treiber stack",
        [
          Alcotest.test_case "conservation" `Quick test_treiber_conservation;
          Alcotest.test_case "sequential LIFO" `Quick test_treiber_lifo_sequential;
          Alcotest.test_case "empty pops" `Quick test_treiber_empty_pop;
        ] );
      ( "ms queue",
        [
          Alcotest.test_case "conservation" `Quick test_msqueue_conservation;
          Alcotest.test_case "sequential FIFO" `Quick test_msqueue_fifo_sequential;
          Alcotest.test_case "per-producer order" `Quick test_msqueue_per_producer_order;
        ] );
      ( "elimination stack",
        [
          Alcotest.test_case "eliminates under contention" `Quick
            test_elimination_happens_under_contention;
          Alcotest.test_case "values distinct" `Quick test_elimination_values_distinct;
          Alcotest.test_case "beats plain treiber" `Quick
            test_elimination_beats_plain_treiber;
          Alcotest.test_case "validation" `Quick test_elimination_validation;
        ] );
      ( "rcu",
        [
          Alcotest.test_case "no torn reads" `Quick test_rcu_no_torn_reads;
          Alcotest.test_case "readers wait-free" `Quick test_rcu_readers_wait_free;
        ] );
      ( "universal construction",
        [
          Alcotest.test_case "counter object" `Quick test_universal_counter_object;
          Alcotest.test_case "sequential witness" `Quick
            test_universal_matches_sequential_witness;
        ] );
      ( "obstruction-free",
        [
          Alcotest.test_case "livelocks under round-robin" `Quick
            test_of_livelocks_under_round_robin;
          Alcotest.test_case "progresses with isolation" `Quick
            test_of_progresses_with_isolation;
          Alcotest.test_case "progresses under uniform" `Quick
            test_of_progresses_under_uniform;
        ] );
      ( "wait-free universal",
        [
          Alcotest.test_case "counter object" `Quick test_wf_universal_counter;
          Alcotest.test_case "matches lock-free semantics" `Quick
            test_wf_universal_matches_lockfree_semantics;
          Alcotest.test_case "helps starved victim" `Quick
            test_wf_universal_helps_starved_victim;
        ] );
      ( "unbounded (Lemma 2)",
        [
          Alcotest.test_case "first winner monopolizes" `Quick
            test_unbounded_first_winner_monopolizes;
          Alcotest.test_case "bounded variant completes" `Quick
            test_unbounded_bounded_variant_all_complete;
        ] );
      ( "validation",
        [
          Alcotest.test_case "constructor guards" `Quick test_constructor_validation;
          Alcotest.test_case "universal resize rejected" `Quick
            test_universal_rejects_resizing_apply;
          prop_scu_proposals_unique;
        ] );
      ( "ticket lock (blocking)",
        [
          Alcotest.test_case "counts" `Quick test_ticket_lock_counts;
          Alcotest.test_case "FIFO fairness" `Quick test_ticket_lock_fifo_fair;
          Alcotest.test_case "blocks on crash" `Quick test_ticket_lock_blocks_on_crash;
        ] );
      ( "tas lock (deadlock-free)",
        [
          Alcotest.test_case "counts" `Quick test_tas_lock_counts;
          Alcotest.test_case "fair under uniform" `Quick test_tas_lock_fair_under_uniform;
          Alcotest.test_case "holder observable" `Quick test_tas_lock_holder_observable;
        ] );
      ( "sharded counter (extension)",
        [
          Alcotest.test_case "conserves" `Quick test_sharded_counter_conserves;
          Alcotest.test_case "reduces latency" `Quick test_sharded_counter_reduces_latency;
          Alcotest.test_case "k=1 is the plain counter" `Quick
            test_sharded_single_shard_is_plain_counter;
        ] );
      ( "wait-free counter",
        [
          Alcotest.test_case "counts" `Quick test_waitfree_counter_counts;
          Alcotest.test_case "bounded individual progress" `Quick
            test_waitfree_counter_bounded_individual_progress;
          Alcotest.test_case "beats lock-free under adversary" `Quick
            test_lockfree_starved_process_stalls_in_contrast;
        ] );
    ]
