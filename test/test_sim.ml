(* Tests for the effects-based shared-memory simulator: memory
   semantics, step accounting, crash handling, determinism. *)

open Core

let rng () = Stats.Rng.create ~seed:42

(* -- Memory ------------------------------------------------------- *)

let test_memory_ops () =
  let m = Sim.Memory.create () in
  let a = Sim.Memory.alloc m ~size:2 in
  Alcotest.(check int) "fresh cell is zero" 0 (Sim.Memory.apply m (Read a));
  ignore (Sim.Memory.apply m (Write (a, 7)));
  Alcotest.(check int) "write then read" 7 (Sim.Memory.apply m (Read a));
  Alcotest.(check int) "cas success returns 1" 1 (Sim.Memory.apply m (Cas (a, 7, 9)));
  Alcotest.(check int) "cas failure returns 0" 0 (Sim.Memory.apply m (Cas (a, 7, 11)));
  Alcotest.(check int) "value after failed cas" 9 (Sim.Memory.apply m (Read a));
  Alcotest.(check int) "cas_get returns old on success" 9
    (Sim.Memory.apply m (Cas_get (a, 9, 10)));
  Alcotest.(check int) "cas_get returns current on failure" 10
    (Sim.Memory.apply m (Cas_get (a, 9, 12)));
  Alcotest.(check int) "faa returns old" 10 (Sim.Memory.apply m (Faa (a, 5)));
  Alcotest.(check int) "faa added" 15 (Sim.Memory.apply m (Read a))

let test_memory_alloc () =
  let m = Sim.Memory.create ~capacity:2 () in
  let a = Sim.Memory.alloc m ~size:3 in
  let b = Sim.Memory.alloc m ~size:1 in
  Alcotest.(check bool) "blocks disjoint" true (b >= a + 3);
  let c = Sim.Memory.alloc_init m [| 4; 5; 6 |] in
  Alcotest.(check int) "alloc_init first" 4 (Sim.Memory.get m c);
  Alcotest.(check int) "alloc_init last" 6 (Sim.Memory.get m (c + 2));
  Alcotest.check_raises "oob read" (Invalid_argument "Memory: address 999 out of bounds (used=9)")
    (fun () -> ignore (Sim.Memory.get m 999))

let test_null_rejected () =
  let m = Sim.Memory.create () in
  (match Sim.Memory.apply m (Read Sim.Memory.scratch) with
  | 0 -> ()
  | v -> Alcotest.failf "scratch should read 0, got %d" v);
  Alcotest.check_raises "null write rejected"
    (Invalid_argument "Memory: address 0 out of bounds (used=2)") (fun () ->
      ignore (Sim.Memory.apply m (Write (0, 1))))

(* -- Executor basics ---------------------------------------------- *)

(* A one-register program: each process increments its own cell q
   times per operation. *)
let private_counter_spec ~n ~q =
  let memory = Sim.Memory.create () in
  let cells = Sim.Memory.alloc memory ~size:n in
  let program (ctx : Sim.Program.ctx) =
    let rec loop () =
      for _ = 1 to q do
        let v = Sim.Program.read (cells + ctx.id) in
        Sim.Program.write (cells + ctx.id) (v + 1)
      done;
      Sim.Program.complete ();
      loop ()
    in
    loop ()
  in
  (cells, { Sim.Executor.name = "private-counter"; memory; program })

let test_steps_accounting () =
  let n = 4 in
  let _, spec = private_counter_spec ~n ~q:1 in
  let r =
    Sim.Executor.exec ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps 10_000)
      spec
  in
  Alcotest.(check int) "time = requested steps" 10_000 (Sim.Metrics.time r.metrics);
  let total_proc_steps =
    List.fold_left ( + ) 0 (List.init n (fun i -> Sim.Metrics.steps_of r.metrics i))
  in
  Alcotest.(check int) "per-process steps sum to time" 10_000 total_proc_steps

let test_completions_counted () =
  let n = 3 in
  let cells, spec = private_counter_spec ~n ~q:2 in
  let r =
    Sim.Executor.exec ~scheduler:Sched.Scheduler.uniform ~n
      ~stop:(Completions 300) spec
  in
  Alcotest.(check bool) "reached target" true
    (Sim.Metrics.total_completions r.metrics >= 300);
  (* Each operation = 2 increments of the private cell (2 reads + 2
     writes = 4 steps); cells record completed increments. *)
  for i = 0 to n - 1 do
    let c = Sim.Memory.get spec.memory (cells + i) in
    let ops = Sim.Metrics.completions_of r.metrics i in
    Alcotest.(check bool)
      (Printf.sprintf "cell %d consistent" i)
      true
      (c >= 2 * ops && c <= (2 * ops) + 2)
  done

let test_determinism () =
  let run () =
    let _, spec = private_counter_spec ~n:5 ~q:3 in
    let r =
      Sim.Executor.exec
        ~config:
          Sim.Executor.Config.(default |> with_seed 123 |> with_trace true)
        ~scheduler:Sched.Scheduler.uniform ~n:5 ~stop:(Steps 5_000) spec
    in
    ( Sim.Metrics.total_completions r.metrics,
      Sched.Trace.to_array (Option.get r.trace) )
  in
  let c1, t1 = run () and c2, t2 = run () in
  Alcotest.(check int) "same completions" c1 c2;
  Alcotest.(check bool) "same schedule" true (t1 = t2)

let test_round_robin_exact () =
  (* Under round-robin with q=1, every process completes every 2 of its
     steps; with n processes the system completes one op every 2 steps
     on average, exactly. *)
  let n = 4 in
  let _, spec = private_counter_spec ~n ~q:1 in
  let r =
    Sim.Executor.exec
      ~scheduler:(Sched.Scheduler.round_robin ())
      ~n ~stop:(Steps 8_000) spec
  in
  Alcotest.(check int) "completions = steps/2" 4_000
    (Sim.Metrics.total_completions r.metrics);
  for i = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "proc %d equal share" i)
      2_000 (Sim.Metrics.steps_of r.metrics i)
  done

(* -- Crashes ------------------------------------------------------ *)

let test_crash_removes_process () =
  let n = 4 in
  let _, spec = private_counter_spec ~n ~q:1 in
  let r =
    Sim.Executor.exec
      ~config:
        Sim.Executor.Config.(
          default |> with_trace true
          |> with_faults
               (Sched.Fault_plan.of_crash_events [ (1_000, 0); (2_000, 1) ]))
      ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps 50_000) spec
  in
  Alcotest.(check bool) "p0 crashed" true r.crashed.(0);
  Alcotest.(check bool) "p1 crashed" true r.crashed.(1);
  Alcotest.(check bool) "p2 alive" false r.crashed.(2);
  (* After its crash time a process takes no steps. *)
  let trace = Sched.Trace.to_array (Option.get r.trace) in
  Array.iteri
    (fun tau p ->
      if tau >= 1_000 then Alcotest.(check bool) "p0 silent after crash" true (p <> 0);
      if tau >= 2_000 then Alcotest.(check bool) "p1 silent after crash" true (p <> 1))
    trace;
  (* Survivors keep completing: minimal progress holds despite crashes
     (lock-freedom under the crash model). *)
  Alcotest.(check bool) "survivors progress" true
    (Sim.Metrics.completions_of r.metrics 2 > 1_000)

let test_all_crash_rejected () =
  (* Crash plans reach the executor through Fault_plan.of_crash_plan
     (the deprecated [run ?crash_plan] wrapper is gone); a plan that
     permanently kills every process must still be rejected. *)
  let _, spec = private_counter_spec ~n:2 ~q:1 in
  Alcotest.check_raises "crash plan killing everyone rejected"
    (Invalid_argument
       "Executor.run: fault plan: all processes would crash permanently")
    (fun () ->
      ignore
        (Sim.Executor.exec
           ~config:
             Sim.Executor.Config.(
               default
               |> with_faults
                    (Sched.Fault_plan.of_crash_plan
                       (Sched.Crash_plan.of_list [ (10, 0); (20, 1) ])))
           ~scheduler:Sched.Scheduler.uniform ~n:2 ~stop:(Steps 100) spec))

(* -- Fault plans (chaos layer) ------------------------------------- *)

let test_fault_crash_only_equiv () =
  (* A crash-only fault plan must be byte-identical to the same events
     routed through the Crash_plan bridge: same schedule, same
     metrics, same flags. *)
  let events = [ (500, 0); (1_500, 2) ] in
  let run ~use_fault_plan =
    let c = Scu.Counter.make ~n:4 in
    let plan =
      if use_fault_plan then Sched.Fault_plan.of_crash_events events
      else Sched.Fault_plan.of_crash_plan (Sched.Crash_plan.of_list events)
    in
    let r =
      Sim.Executor.exec
        ~config:
          Sim.Executor.Config.(
            default |> with_seed 7 |> with_trace true |> with_faults plan)
        ~scheduler:Sched.Scheduler.uniform ~n:4 ~stop:(Steps 20_000) c.spec
    in
    ( Sim.Metrics.total_completions r.metrics,
      Sim.Metrics.mean_system_latency r.metrics,
      Sched.Trace.to_array (Option.get r.trace),
      r.crashed )
  in
  let c1, w1, t1, k1 = run ~use_fault_plan:false in
  let c2, w2, t2, k2 = run ~use_fault_plan:true in
  Alcotest.(check int) "same completions" c1 c2;
  Alcotest.(check (float 0.)) "same latency" w1 w2;
  Alcotest.(check bool) "same schedule" true (t1 = t2);
  Alcotest.(check bool) "same crash flags" true (k1 = k2)

let test_restart_revives_process () =
  let n = 3 in
  let _, spec = private_counter_spec ~n ~q:1 in
  let plan =
    Sched.Fault_plan.make
      [ (500, Sched.Fault_plan.Crash 0); (1_500, Sched.Fault_plan.Restart 0) ]
  in
  let r =
    Sim.Executor.exec
      ~config:
        Sim.Executor.Config.(default |> with_trace true |> with_faults plan)
      ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps 5_000) spec
  in
  Alcotest.(check (array int)) "one restart of p0" [| 1; 0; 0 |] r.restarts;
  Alcotest.(check bool) "p0 not crashed at the end" false r.crashed.(0);
  (* No idle ticks happen here (p1/p2 stay alive), so trace index =
     time: p0 is silent during its crash window and active after. *)
  let trace = Sched.Trace.to_array (Option.get r.trace) in
  let p0_steps lo hi =
    let c = ref 0 in
    Array.iteri (fun tau p -> if p = 0 && tau >= lo && tau < hi then incr c) trace;
    !c
  in
  Alcotest.(check int) "silent while crashed" 0 (p0_steps 500 1_500);
  Alcotest.(check bool) "steps again after restart" true (p0_steps 1_500 5_000 > 0)

let test_stall_window_is_temporary () =
  let n = 3 in
  let _, spec = private_counter_spec ~n ~q:1 in
  let plan = Sched.Fault_plan.make [ (100, Sched.Fault_plan.Stall (0, 400)) ] in
  let r =
    Sim.Executor.exec
      ~config:
        Sim.Executor.Config.(default |> with_trace true |> with_faults plan)
      ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps 2_000) spec
  in
  Alcotest.(check bool) "never crashed" true (Array.for_all not r.crashed);
  Alcotest.(check (array int)) "no restarts" [| 0; 0; 0 |] r.restarts;
  let trace = Sched.Trace.to_array (Option.get r.trace) in
  let p0_steps lo hi =
    let c = ref 0 in
    Array.iteri (fun tau p -> if p = 0 && tau >= lo && tau < hi then incr c) trace;
    !c
  in
  Alcotest.(check int) "silent during [100,500)" 0 (p0_steps 100 500);
  Alcotest.(check bool) "steps again after the window" true (p0_steps 500 2_000 > 0)

let test_all_stalled_idles_then_resumes () =
  (* Every process stalled: the clock ticks without attributing steps,
     then work resumes when the window expires. *)
  let n = 2 in
  let _, spec = private_counter_spec ~n ~q:1 in
  let plan =
    Sched.Fault_plan.make
      [ (0, Sched.Fault_plan.Stall (0, 100)); (0, Sched.Fault_plan.Stall (1, 100)) ]
  in
  let r =
    Sim.Executor.exec
      ~config:Sim.Executor.Config.(default |> with_faults plan)
      ~scheduler:Sched.Scheduler.uniform ~n ~stop:(Steps 1_000) spec
  in
  Alcotest.(check bool) "not stopped early" false r.stopped_early;
  Alcotest.(check int) "clock ran to the target" 1_000 (Sim.Metrics.time r.metrics);
  let attributed =
    Sim.Metrics.steps_of r.metrics 0 + Sim.Metrics.steps_of r.metrics 1
  in
  Alcotest.(check int) "idle ticks burned the window" 900 attributed;
  Alcotest.(check bool) "work resumed after the window" true
    (Sim.Metrics.total_completions r.metrics > 0)

let test_all_dead_stops_early_with_partial_metrics () =
  (* p0 crashes mid-operation, p1 finishes its bounded body: with no
     process left and no restart pending, the run stops early and the
     metrics cover exactly the work that completed. *)
  let memory = Sim.Memory.create () in
  let cell = Sim.Memory.alloc memory ~size:1 in
  let program (_ : Sim.Program.ctx) =
    for _ = 1 to 5 do
      ignore (Sim.Program.faa cell 1);
      Sim.Program.complete ()
    done
  in
  let spec = { Sim.Executor.name = "bounded"; memory; program } in
  let r =
    Sim.Executor.exec
      ~config:
        Sim.Executor.Config.(
          default
          |> with_faults
               (Sched.Fault_plan.make [ (3, Sched.Fault_plan.Crash 0) ]))
      ~scheduler:(Sched.Scheduler.round_robin ())
      ~n:2 ~stop:(Steps 100_000) spec
  in
  Alcotest.(check bool) "stopped early" true r.stopped_early;
  Alcotest.(check bool) "p0 crashed" true r.crashed.(0);
  Alcotest.(check bool) "p1 terminated" true r.terminated.(1);
  (* Round-robin: p0 stepped at times 0 and 2, so 2 completed ops. *)
  Alcotest.(check int) "p0 partial ops" 2 (Sim.Metrics.completions_of r.metrics 0);
  Alcotest.(check int) "p1 all ops" 5 (Sim.Metrics.completions_of r.metrics 1);
  Alcotest.(check int) "cell shows completed work only" 7 (Sim.Memory.get memory cell);
  Alcotest.(check bool) "p0 pending op preserved" true (r.pending.(0) <> None)

let test_choose_none_stops_at_frontier () =
  (* The explorer's choice callback declining under an active crash
     plan: the run stops where the callback said, with the crash
     already applied. *)
  let _, spec = private_counter_spec ~n:2 ~q:1 in
  let r =
    Sim.Executor.exec
      ~config:
        Sim.Executor.Config.(
          default
          |> with_faults
               (Sched.Fault_plan.of_crash_plan
                  (Sched.Crash_plan.of_list [ (5, 1) ]))
          |> with_choose (fun ~alive ~time ->
                 if time >= 10 then None
                 else Some (if alive.(1) then time mod 2 else 0)))
      ~scheduler:Sched.Scheduler.uniform ~n:2 ~stop:(Steps 1_000) spec
  in
  Alcotest.(check bool) "stopped early" true r.stopped_early;
  Alcotest.(check int) "stopped at the frontier" 10 (Sim.Metrics.time r.metrics);
  Alcotest.(check bool) "crash applied before the stop" true r.crashed.(1)

let test_pending_preserved_for_crashed_casget () =
  (* A process crashed while suspended at an augmented CAS: its
     pending operation is preserved for post-mortem analysis. *)
  let memory = Sim.Memory.create () in
  let cell = Sim.Memory.alloc memory ~size:1 in
  let program (ctx : Sim.Program.ctx) =
    if ctx.id = 0 then begin
      let rec loop v =
        let got = Sim.Program.cas_get cell ~expected:v ~value:(v + 1) in
        Sim.Program.complete ();
        loop got
      in
      loop (Sim.Program.read cell)
    end
    else
      let rec spin () =
        ignore (Sim.Program.read cell);
        spin ()
      in
      spin ()
  in
  let spec = { Sim.Executor.name = "casget"; memory; program } in
  let r =
    Sim.Executor.exec
      ~config:
        Sim.Executor.Config.(
          default
          |> with_faults
               (Sched.Fault_plan.make [ (2, Sched.Fault_plan.Crash 0) ]))
      ~scheduler:(Sched.Scheduler.round_robin ())
      ~n:2 ~stop:(Steps 100) spec
  in
  Alcotest.(check bool) "p0 crashed" true r.crashed.(0);
  match r.pending.(0) with
  | Some (Sim.Memory.Cas_get _) -> ()
  | _ -> Alcotest.fail "expected p0 pending at a Cas_get"

let test_spurious_cas_slows_but_stays_correct () =
  let run rate =
    let c = Scu.Counter.make ~n:4 in
    let plan =
      if rate > 0. then Sched.Fault_plan.make ~spurious:[ (None, rate) ] []
      else Sched.Fault_plan.none
    in
    let r =
      Sim.Executor.exec
        ~config:
          Sim.Executor.Config.(default |> with_seed 11 |> with_faults plan)
        ~scheduler:Sched.Scheduler.uniform ~n:4 ~stop:(Steps 30_000) c.spec
    in
    (r, Scu.Counter.value c c.spec.memory)
  in
  let r0, v0 = run 0. in
  let r5, v5 = run 0.5 in
  Alcotest.(check int) "fault-free run has no denials" 0 r0.spurious_cas;
  Alcotest.(check bool) "denials counted" true (r5.spurious_cas > 0);
  Alcotest.(check bool) "throughput drops under denial" true
    (Sim.Metrics.total_completions r5.metrics
    < Sim.Metrics.total_completions r0.metrics);
  (* Denied CASes are transparent retries: the register still counts
     exactly the completed operations. *)
  Alcotest.(check int) "register = completions (fault-free)"
    (Sim.Metrics.total_completions r0.metrics)
    v0;
  Alcotest.(check int) "register = completions (faulty)"
    (Sim.Metrics.total_completions r5.metrics)
    v5

let test_fault_plan_all_crash_rejected () =
  let _, spec = private_counter_spec ~n:2 ~q:1 in
  Alcotest.check_raises "permanent all-crash rejected"
    (Invalid_argument
       "Executor.run: fault plan: all processes would crash permanently")
    (fun () ->
      ignore
        (Sim.Executor.exec
           ~config:
             Sim.Executor.Config.(
               default
               |> with_faults
                    (Sched.Fault_plan.make
                       [
                         (10, Sched.Fault_plan.Crash 0);
                         (20, Sched.Fault_plan.Crash 1);
                       ]))
           ~scheduler:Sched.Scheduler.uniform ~n:2 ~stop:(Steps 100) spec))

(* -- Termination -------------------------------------------------- *)

let test_terminated_processes_leave () =
  (* Processes run a bounded number of ops and return; the run should
     stop early once everyone terminated. *)
  let memory = Sim.Memory.create () in
  let cell = Sim.Memory.alloc memory ~size:1 in
  let program (_ : Sim.Program.ctx) =
    for _ = 1 to 10 do
      ignore (Sim.Program.faa cell 1);
      Sim.Program.complete ()
    done
  in
  let spec = { Sim.Executor.name = "bounded"; memory; program } in
  let r =
    Sim.Executor.exec ~scheduler:Sched.Scheduler.uniform ~n:3
      ~stop:(Steps 100_000) spec
  in
  Alcotest.(check bool) "stopped early" true r.stopped_early;
  Alcotest.(check int) "exactly 30 ops" 30 (Sim.Metrics.total_completions r.metrics);
  Alcotest.(check int) "cell counted every op" 30 (Sim.Memory.get memory cell);
  Array.iter (fun t -> Alcotest.(check bool) "terminated flag" true t) r.terminated

(* -- Metrics ------------------------------------------------------ *)

let test_metrics_gaps () =
  let m = Sim.Metrics.create ~record_samples:true ~n:2 () in
  (* proc 0 completes at times 2 and 5; proc 1 at time 3. *)
  Sim.Metrics.on_step m 0;
  Sim.Metrics.on_step m 0;
  Sim.Metrics.on_complete m 0;
  Sim.Metrics.on_step m 1;
  Sim.Metrics.on_complete m 1;
  Sim.Metrics.on_step m 0;
  Sim.Metrics.on_step m 0;
  Sim.Metrics.on_complete m 0;
  Alcotest.(check (float 1e-9)) "system gaps mean" 1.5
    (Stats.Summary.mean (Sim.Metrics.system_latency m));
  Alcotest.(check (float 1e-9)) "individual gap p0" 3.
    (Sim.Metrics.mean_individual_latency m 0);
  Alcotest.(check int) "own-step gap count p0" 1
    (Stats.Summary.count (Sim.Metrics.own_step_latency m 0));
  Alcotest.(check (float 1e-9)) "own-step gap p0" 2.
    (Stats.Summary.mean (Sim.Metrics.own_step_latency m 0));
  Alcotest.(check (float 1e-9)) "completion rate" (3. /. 5.) (Sim.Metrics.completion_rate m);
  Alcotest.(check int) "system samples recorded" 2
    (Array.length (Sim.Metrics.system_samples m))

let test_scheduler_cannot_pick_dead () =
  let _, spec = private_counter_spec ~n:2 ~q:1 in
  let evil =
    {
      Sched.Scheduler.name = "evil";
      theta = 0.;
      stateful = false;
      pick = (fun ~rng:_ ~alive:_ ~time:_ -> 1);
      fill = None;
    }
  in
  let fault_plan =
    Sched.Fault_plan.of_crash_plan (Sched.Crash_plan.of_list [ (5, 1) ])
  in
  (try
     ignore
       (Sim.Executor.exec
          ~config:Sim.Executor.Config.(default |> with_faults fault_plan)
          ~scheduler:evil ~n:2 ~stop:(Steps 100) spec);
     Alcotest.fail "expected executor to reject dead pick"
   with Invalid_argument msg ->
     Alcotest.(check bool) "error mentions dead process" true
       (String.length msg > 0));
  ignore (rng ())

let test_invariant_hook_runs () =
  let calls = ref 0 in
  let _, spec = private_counter_spec ~n:2 ~q:1 in
  ignore
    (Sim.Executor.exec
       ~config:
         Sim.Executor.Config.(
           default
           |> with_invariant ~interval:100 (fun mem ~time ->
                  incr calls;
                  (* The monitored cell count never shrinks. *)
                  if Sim.Memory.used mem < 2 then failwith "memory shrank";
                  ignore time))
       ~scheduler:Sched.Scheduler.uniform ~n:2 ~stop:(Steps 1_000) spec);
  (* Every 100 steps plus the final call. *)
  Alcotest.(check int) "invariant called" 11 !calls

let test_invariant_failure_surfaces () =
  let _, spec = private_counter_spec ~n:2 ~q:1 in
  Alcotest.check_raises "raises from the hook" (Failure "broken") (fun () ->
      ignore
        (Sim.Executor.exec
           ~config:
             Sim.Executor.Config.(
               default
               |> with_invariant ~interval:100 (fun _ ~time ->
                      if time >= 300 then failwith "broken"))
           ~scheduler:Sched.Scheduler.uniform ~n:2 ~stop:(Steps 1_000) spec))

let test_invariant_treiber_wellformed_throughout () =
  (* The stack's top chain must be a valid, acyclic, null-terminated
     list at every checkpoint — checked while pushes and pops race. *)
  let s = Scu.Treiber.make ~n:6 () in
  let check mem ~time:_ =
    let seen = Hashtbl.create 64 in
    let rec walk node =
      if node <> 0 then begin
        if Hashtbl.mem seen node then failwith "cycle in stack";
        Hashtbl.add seen node ();
        walk (Sim.Memory.get mem (node + 1))
      end
    in
    walk (Sim.Memory.get mem s.top)
  in
  ignore
    (Sim.Executor.exec
       ~config:
         Sim.Executor.Config.(default |> with_invariant ~interval:97 check)
       ~scheduler:Sched.Scheduler.uniform ~n:6 ~stop:(Steps 100_000) s.spec)

let test_program_exception_propagates () =
  let memory = Sim.Memory.create () in
  let cell = Sim.Memory.alloc memory ~size:1 in
  let program (_ : Sim.Program.ctx) =
    ignore (Sim.Program.read cell);
    failwith "boom"
  in
  let spec = { Sim.Executor.name = "raiser"; memory; program } in
  Alcotest.check_raises "program failure surfaces" (Failure "boom") (fun () ->
      ignore
        (Sim.Executor.exec ~scheduler:Sched.Scheduler.uniform ~n:1
           ~stop:(Steps 10) spec))

let test_zero_steps () =
  let _, spec = private_counter_spec ~n:2 ~q:1 in
  let r =
    Sim.Executor.exec ~scheduler:Sched.Scheduler.uniform ~n:2 ~stop:(Steps 0)
      spec
  in
  Alcotest.(check int) "no time passes" 0 (Sim.Metrics.time r.metrics);
  Alcotest.(check int) "no completions" 0 (Sim.Metrics.total_completions r.metrics)

let test_single_process_counter_exact () =
  (* One process, no contention: the CAS counter completes exactly one
     operation per 2 steps. *)
  let c = Scu.Counter.make ~n:1 in
  let r =
    Sim.Executor.exec ~scheduler:Sched.Scheduler.uniform ~n:1
      ~stop:(Steps 1_000) c.spec
  in
  Alcotest.(check int) "steps/2 completions" 500 (Sim.Metrics.total_completions r.metrics)

(* -- Model-based memory property ------------------------------------ *)

(* Random op sequences against a trivial functional model: an int map.
   Catches any drift between the simulated primitives and their
   specification. *)
let prop_memory_vs_model =
  let gen =
    QCheck2.Gen.(
      pair (int_range 0 100000)
        (list_size (int_range 1 200)
           (tup4 (int_range 0 4) (int_range 0 7) (int_range (-3) 3) (int_range (-3) 3))))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"memory agrees with a functional model" ~count:200 gen
       (fun (_, ops) ->
         let mem = Sim.Memory.create () in
         let base = Sim.Memory.alloc mem ~size:8 in
         let model = Array.make 8 0 in
         List.for_all
           (fun (kind, cell, x, y) ->
             let a = base + cell in
             match kind with
             | 0 ->
                 let got = Sim.Memory.apply mem (Read a) in
                 got = model.(cell)
             | 1 ->
                 let got = Sim.Memory.apply mem (Write (a, x)) in
                 model.(cell) <- x;
                 got = x
             | 2 ->
                 let expected_success = model.(cell) = x in
                 let got = Sim.Memory.apply mem (Cas (a, x, y)) in
                 if expected_success then model.(cell) <- y;
                 got = (if expected_success then 1 else 0)
             | 3 ->
                 let old = model.(cell) in
                 let got = Sim.Memory.apply mem (Cas_get (a, x, y)) in
                 if old = x then model.(cell) <- y;
                 got = old
             | _ ->
                 let old = model.(cell) in
                 let got = Sim.Memory.apply mem (Faa (a, x)) in
                 model.(cell) <- old + x;
                 got = old)
           ops))

let test_method_metrics () =
  let m = Sim.Metrics.create ~n:2 () in
  Sim.Metrics.on_step m 0;
  Sim.Metrics.on_complete_method m 0 7;
  Sim.Metrics.on_step m 1;
  Sim.Metrics.on_step m 1;
  Sim.Metrics.on_complete_method m 1 7;
  Sim.Metrics.on_complete_method m 1 9;
  Alcotest.(check (list int)) "methods observed" [ 7; 9 ] (Sim.Metrics.methods m);
  Alcotest.(check int) "total completions include labeled" 3
    (Sim.Metrics.total_completions m);
  Alcotest.(check bool) "per-proc method counts" true
    (Sim.Metrics.method_completions m ~method_:7 = [| 1; 1 |]);
  Alcotest.(check (float 1e-9)) "method gap" 2.
    (Stats.Summary.mean (Sim.Metrics.method_system_latency m ~method_:7));
  Alcotest.(check int) "unseen method empty" 0
    (Array.fold_left ( + ) 0 (Sim.Metrics.method_completions m ~method_:42))

let () =
  Alcotest.run "sim"
    [
      ( "memory",
        [
          Alcotest.test_case "ops semantics" `Quick test_memory_ops;
          Alcotest.test_case "alloc" `Quick test_memory_alloc;
          Alcotest.test_case "null rejected" `Quick test_null_rejected;
        ] );
      ( "executor",
        [
          Alcotest.test_case "step accounting" `Quick test_steps_accounting;
          Alcotest.test_case "completions counted" `Quick test_completions_counted;
          Alcotest.test_case "deterministic given seed" `Quick test_determinism;
          Alcotest.test_case "round-robin exact" `Quick test_round_robin_exact;
          Alcotest.test_case "terminated processes leave" `Quick
            test_terminated_processes_leave;
          Alcotest.test_case "dead pick rejected" `Quick test_scheduler_cannot_pick_dead;
          Alcotest.test_case "program exception propagates" `Quick
            test_program_exception_propagates;
          Alcotest.test_case "zero steps" `Quick test_zero_steps;
          Alcotest.test_case "n=1 counter exact" `Quick test_single_process_counter_exact;
          Alcotest.test_case "invariant hook runs" `Quick test_invariant_hook_runs;
          Alcotest.test_case "invariant failure surfaces" `Quick
            test_invariant_failure_surfaces;
          Alcotest.test_case "treiber well-formed throughout" `Quick
            test_invariant_treiber_wellformed_throughout;
        ] );
      ( "crashes",
        [
          Alcotest.test_case "crash removes process" `Quick test_crash_removes_process;
          Alcotest.test_case "all-crash rejected" `Quick test_all_crash_rejected;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash-only plan = crash plan" `Quick
            test_fault_crash_only_equiv;
          Alcotest.test_case "restart revives" `Quick test_restart_revives_process;
          Alcotest.test_case "stall is temporary" `Quick test_stall_window_is_temporary;
          Alcotest.test_case "all-stalled idles then resumes" `Quick
            test_all_stalled_idles_then_resumes;
          Alcotest.test_case "all-dead stops early, sound partial metrics" `Quick
            test_all_dead_stops_early_with_partial_metrics;
          Alcotest.test_case "choose None under crash plan" `Quick
            test_choose_none_stops_at_frontier;
          Alcotest.test_case "pending preserved mid-Cas_get" `Quick
            test_pending_preserved_for_crashed_casget;
          Alcotest.test_case "spurious CAS slows, stays correct" `Quick
            test_spurious_cas_slows_but_stays_correct;
          Alcotest.test_case "permanent all-crash rejected" `Quick
            test_fault_plan_all_crash_rejected;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "gap bookkeeping" `Quick test_metrics_gaps;
          Alcotest.test_case "per-method bookkeeping" `Quick test_method_metrics;
        ] );
      ("properties", [ prop_memory_vs_model ]);
    ]
