(* Tests for the iterated balls-into-bins game (§6.1.3): structural
   invariants, reset semantics, Lemma 8 phase-length scaling, and
   Lemma 9 range dynamics. *)

open Core

let rng () = Stats.Rng.create ~seed:2024

let test_initial_state () =
  let g = Ballsbins.Game.create ~n:5 in
  Alcotest.(check int) "a = n" 5 (Ballsbins.Game.a g);
  Alcotest.(check int) "b = 0" 0 (Ballsbins.Game.b g);
  Alcotest.(check bool) "all one ball" true
    (Ballsbins.Game.counts g = Array.make 5 1)

let test_phase_start_invariant () =
  (* At every phase start, no bin holds two or more balls, so
     a + b = n. *)
  let n = 16 in
  let g = Ballsbins.Game.create ~n in
  let r = rng () in
  for _ = 1 to 500 do
    let phase = Ballsbins.Game.run_phase g ~rng:r in
    Alcotest.(check int) "a+b = n at start" n (phase.a_start + phase.b_start);
    let counts = Ballsbins.Game.counts g in
    Array.iter
      (fun c -> Alcotest.(check bool) "post-reset balls in {0,1}" true (c = 0 || c = 1))
      counts;
    Alcotest.(check bool) "phase has positive length" true (phase.length >= 1)
  done

let test_n1_phase_length () =
  (* One bin: the phase needs exactly 2 throws (1 ball -> 3 balls). *)
  let g = Ballsbins.Game.create ~n:1 in
  let p = Ballsbins.Game.run_phase g ~rng:(rng ()) in
  Alcotest.(check int) "n=1 phase = 2 throws" 2 p.length;
  Alcotest.(check int) "winner back to one ball" 1 (Ballsbins.Game.counts g).(0)

let test_range_classification () =
  Alcotest.(check bool) "a=n is First" true
    (Ballsbins.Game.range_of ~n:30 30 = Ballsbins.Game.First);
  Alcotest.(check bool) "a=n/3 is First" true
    (Ballsbins.Game.range_of ~n:30 10 = Ballsbins.Game.First);
  Alcotest.(check bool) "a just below n/3 is Second" true
    (Ballsbins.Game.range_of ~n:30 9 = Ballsbins.Game.Second);
  Alcotest.(check bool) "a=n/c is Second" true
    (Ballsbins.Game.range_of ~n:30 3 = Ballsbins.Game.Second);
  Alcotest.(check bool) "a below n/c is Third" true
    (Ballsbins.Game.range_of ~n:30 2 = Ballsbins.Game.Third);
  Alcotest.(check bool) "custom c" true
    (Ballsbins.Game.range_of ~c:5 ~n:30 5 = Ballsbins.Game.Third)

let test_phase_length_sqrt_scaling () =
  (* Lemma 8 / Theorem 5: mean phase length grows like sqrt(n). *)
  let mean n =
    let g = Ballsbins.Game.create ~n in
    Ballsbins.Game.mean_phase_length g ~rng:(rng ()) ~phases:3_000
  in
  let pts =
    List.map (fun n -> (float_of_int n, mean n)) [ 64; 128; 256; 512; 1024; 2048 ]
  in
  let fit = Stats.Regression.power_law pts in
  Alcotest.(check bool)
    (Printf.sprintf "exponent ~0.5 (got %.3f)" fit.slope)
    true
    (fit.slope > 0.42 && fit.slope < 0.58);
  (* Constant check: W <= 2 sqrt n over the measured range. *)
  List.iter
    (fun (n, w) ->
      Alcotest.(check bool)
        (Printf.sprintf "phase(%g) = %.2f <= 2 sqrt n" n w)
        true
        (w <= 2. *. sqrt n))
    pts

let test_third_range_rare_lemma9 () =
  (* Lemma 9: phases in the third range are rare in steady state. *)
  let n = 512 in
  let g = Ballsbins.Game.create ~n in
  let r = rng () in
  (* warmup *)
  for _ = 1 to 500 do
    ignore (Ballsbins.Game.run_phase g ~rng:r)
  done;
  let phases = Ballsbins.Game.run g ~rng:r ~phases:5_000 in
  let third =
    List.length (List.filter (fun p -> p.Ballsbins.Game.range = Third) phases)
  in
  Alcotest.(check bool)
    (Printf.sprintf "third range fraction %.4f small" (float_of_int third /. 5000.))
    true
    (float_of_int third /. 5000. < 0.01)

let test_matches_scu_system_chain () =
  (* The game is the system chain in disguise: its mean phase length
     should match the exact stationary system latency W(n) from
     Chains.Scu_chain. *)
  List.iter
    (fun n ->
      let exact = Chains.Scu_chain.System.system_latency ~n in
      let g = Ballsbins.Game.create ~n in
      let sim = Ballsbins.Game.mean_phase_length g ~rng:(rng ()) ~phases:60_000 in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: game %.3f vs chain %.3f" n sim exact)
        true
        (Float.abs (sim -. exact) /. exact < 0.03))
    [ 2; 4; 8 ]

let prop_reset_conserves_bins =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"phase never changes the number of bins" ~count:50
       QCheck2.Gen.(pair (int_range 1 64) (int_range 0 100000))
       (fun (n, seed) ->
         let g = Ballsbins.Game.create ~n in
         let r = Stats.Rng.create ~seed in
         ignore (Ballsbins.Game.run_phase g ~rng:r);
         Array.length (Ballsbins.Game.counts g) = n
         && Ballsbins.Game.a g + Ballsbins.Game.b g = n))

let test_create_validation () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Game.create: n must be >= 1")
    (fun () -> ignore (Ballsbins.Game.create ~n:0))

let () =
  Alcotest.run "ballsbins"
    [
      ( "structure",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "phase-start invariant" `Quick test_phase_start_invariant;
          Alcotest.test_case "n=1 exact" `Quick test_n1_phase_length;
          Alcotest.test_case "range classification" `Quick test_range_classification;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          prop_reset_conserves_bins;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "sqrt n phases (Lemma 8)" `Slow
            test_phase_length_sqrt_scaling;
          Alcotest.test_case "third range rare (Lemma 9)" `Quick
            test_third_range_rare_lemma9;
          Alcotest.test_case "matches SCU system chain" `Slow test_matches_scu_system_chain;
        ] );
    ]
