(* The scenario DSL (lib/scenario): the preset × structure conformance
   matrix, the shadow-state gate's independent detection power, and
   QCheck roundtrip properties over the --spec grammar.

   The matrix runs every named preset against every stock structure
   with the preset's own sources, gates and fault-rate tier but a
   scaled-down step budget (the full century budget is a nightly-CI
   job, not a unit test), and every seeded [-nocas] bug against the
   [standard] preset, which must catch it. *)

module FP = Sched.Fault_plan

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let stock_names =
  List.map (fun (s : Scu.Checkable.t) -> s.Scu.Checkable.name) Scu.Checkable.stock

let no_faults = { FP.base = FP.none; rates = FP.quick_rates }

(* Scaled-down budget for matrix cells: same shape as the presets',
   small enough that 4 presets x 6 structures stays a unit test. *)
let scaled =
  {
    Scenario.explore_nodes = 1_500;
    explore_depth = 32;
    fuzz_trials = 40;
    sched_trials = 2;
    chaos_trials = 10;
    long_conform = false;
  }

(* -- Preset × structure conformance matrix ---------------------------- *)

let drop_conform = List.filter (fun g -> g <> Scenario.Conform)

let clean_cell (p : Scenario.t) structure () =
  let scn =
    p
    |> Scenario.with_structures [ structure ]
    |> Scenario.with_budget scaled
    |> Scenario.with_gates (drop_conform p.Scenario.gates)
  in
  let out = Scenario.run scn in
  Alcotest.(check (list string))
    "no violations"
    []
    (List.map
       (fun (f : Scenario.failure) -> f.structure ^ "/" ^ f.verdict)
       out.Scenario.failures);
  Alcotest.(check bool) "cell clean" true out.Scenario.passed

let matrix_clean_cases =
  List.concat_map
    (fun (pname, p) ->
      List.map
        (fun structure ->
          Alcotest.test_case
            (Printf.sprintf "%s × %s" pname structure)
            `Quick (clean_cell p structure))
        stock_names)
    Scenario.presets

(* Every seeded bug must be caught under (at least) the standard
   preset; explore keeps its full budget so detection stays the
   deterministic exhaustive kind, not fuzz luck. *)
let bug_budget = { scaled with Scenario.explore_nodes = 20_000; explore_depth = 64 }

let bug_cell structure ~n ~ops () =
  let scn =
    Scenario.standard
    |> Scenario.with_structures [ structure ]
    |> Scenario.with_workload ~n ~ops
    |> Scenario.with_budget bug_budget
    |> Scenario.with_gates (drop_conform Scenario.standard.Scenario.gates)
  in
  let out = Scenario.run scn in
  Alcotest.(check bool) "bug caught" false out.Scenario.passed;
  Alcotest.(check bool) "every failure names the seeded structure" true
    (out.Scenario.failures <> []
    && List.for_all
         (fun (f : Scenario.failure) -> f.structure = structure)
         out.Scenario.failures)

let matrix_bug_cases =
  [
    Alcotest.test_case "standard catches counter-nocas" `Quick
      (bug_cell "counter-nocas" ~n:2 ~ops:2);
    Alcotest.test_case "standard catches treiber-nocas" `Quick
      (bug_cell "treiber-nocas" ~n:2 ~ops:2);
    Alcotest.test_case "standard catches msqueue-nocas" `Quick
      (bug_cell "msqueue-nocas" ~n:4 ~ops:1);
  ]

let test_events_arrive_in_source_order () =
  let order = ref [] in
  let scn =
    Scenario.quick
    |> Scenario.with_structures [ "cas-counter" ]
    |> Scenario.with_budget scaled
  in
  let out =
    Scenario.run
      ~on_event:(fun e ->
        order :=
          (match e with
          | Scenario.Explore_done { structure; _ } -> "explore:" ^ structure
          | Scenario.Fuzz_done { structure; _ } -> "fuzz:" ^ structure
          | Scenario.Chaos_done { structure; _ } -> "chaos:" ^ structure
          | Scenario.Replay_done { structure; _ } -> "replay:" ^ structure
          | Scenario.Load_done { structure; _ } -> "load:" ^ structure
          | Scenario.Conform_done _ -> "conform")
          :: !order)
      scn
  in
  Alcotest.(check (list string))
    "one event per (source, structure), in source order"
    [ "explore:cas-counter"; "fuzz:cas-counter" ]
    (List.rev !order);
  Alcotest.(check bool) "fuzz trials counted" true (out.Scenario.trials > 0)

let test_load_source_beyond_checker_limit () =
  (* 3 clients x 30 ops = 90 events: past the 62-op checker bound, so
     the history is Unchecked but the invariant still runs every step
     and a clean structure passes. *)
  let scn =
    Scenario.make ~n:2 ~ops:2 ~faults:no_faults
      ~sources:[ Scenario.Load { clients = 3; ops_per_client = 30 } ]
      ~gates:[ Scenario.Lin; Scenario.Shadow ]
      ~budget:scaled
      ~structures:[ "cas-counter" ] ()
  in
  let completed = ref 0 in
  let out =
    Scenario.run
      ~on_event:(function
        | Scenario.Load_done { completed = c; _ } -> completed := c
        | _ -> ())
      scn
  in
  Alcotest.(check bool) "load run passed" true out.Scenario.passed;
  Alcotest.(check int) "all 90 client ops completed" 90 !completed

let test_replay_source_judged () =
  let scn =
    Scenario.make ~n:2 ~ops:2 ~faults:no_faults
      ~sources:
        [ Scenario.Replay { schedule = [||]; tail = Check.Schedule.Round_robin } ]
      ~gates:[ Scenario.Lin; Scenario.Shadow ]
      ~budget:scaled
      ~structures:[ "cas-counter" ] ()
  in
  Alcotest.(check bool) "round-robin replay clean" true
    (Scenario.run scn).Scenario.passed

(* -- Shadow-state gate power ------------------------------------------ *)

(* counter-misreport returns faa+1: the structural invariant (final
   memory cell = completed increments) still holds, so nothing but a
   spec-replay gate can see the lie.  With every history gate off the
   scenario runner must stay quiet on it — that is the "passes the
   invariant" half of the power claim. *)
let test_misreport_passes_invariant () =
  let scn =
    Scenario.make ~n:2 ~ops:2 ~faults:no_faults ~sources:[ Scenario.Explore ]
      ~gates:[] ~budget:scaled ~structures:[ "counter-misreport" ] ()
  in
  Alcotest.(check bool) "invariant alone sees nothing" true
    (Scenario.run scn).Scenario.passed

let test_shadow_gate_alone_catches_misreport () =
  (* Lin off, Shadow on: the divergence must be caught by the shadow
     replay itself, not the linearizability checker. *)
  let scn =
    Scenario.make ~n:2 ~ops:2 ~faults:no_faults ~sources:[ Scenario.Explore ]
      ~gates:[ Scenario.Shadow ] ~budget:scaled
      ~structures:[ "counter-misreport" ] ()
  in
  let out = Scenario.run scn in
  Alcotest.(check bool) "misreport caught" false out.Scenario.passed;
  Alcotest.(check bool) "every verdict is a shadow divergence" true
    (out.Scenario.failures <> []
    && List.for_all
         (fun (f : Scenario.failure) ->
           contains f.verdict "shadow-state divergence")
         out.Scenario.failures)

let shadow_quiet_on_stock seed () =
  let scn =
    Scenario.make ~n:2 ~ops:2 ~seed ~faults:no_faults
      ~sources:[ Scenario.Fuzz ]
      ~gates:[ Scenario.Lin; Scenario.Shadow ]
      ~budget:{ scaled with Scenario.fuzz_trials = 25; sched_trials = 1 }
      ~structures:stock_names ()
  in
  let out = Scenario.run scn in
  Alcotest.(check (list string))
    "no shadow noise on stock structures" []
    (List.map
       (fun (f : Scenario.failure) -> f.structure ^ "/" ^ f.verdict)
       out.Scenario.failures)

let shadow_quiet_cases =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "gate quiet on stock (seed %d)" seed)
        `Quick (shadow_quiet_on_stock seed))
    [ 0; 1; 2; 3; 4 ]

(* -- Spec grammar: roundtrip property + error surface ----------------- *)

let all_names =
  List.map (fun (s : Scu.Checkable.t) -> s.Scu.Checkable.name) Scu.Checkable.all

let gen_rates =
  QCheck2.Gen.oneofl
    [ FP.quick_rates; FP.standard_rates; FP.century_rates; FP.chaos_rates ]

let gen_faults =
  QCheck2.Gen.(
    map
      (fun (rates, crash, spurious) ->
        let events =
          match crash with
          | None -> []
          | Some (t, p) -> [ (t, FP.Crash p) ]
        in
        let spurious =
          match spurious with None -> [] | Some r -> [ (None, r) ]
        in
        { FP.base = FP.make ~spurious events; rates })
      (triple gen_rates
         (option (pair (int_range 0 20) (int_range 0 3)))
         (option (oneofl [ 0.1; 0.25; 0.5 ]))))

let gen_source =
  QCheck2.Gen.(
    oneof
      [
        return Scenario.Explore;
        return Scenario.Fuzz;
        return Scenario.Chaos;
        map
          (fun (sched, rr) ->
            Scenario.Replay
              {
                schedule = Array.of_list sched;
                tail =
                  (if rr then Check.Schedule.Round_robin
                   else Check.Schedule.Stop);
              })
          (pair (list_size (int_range 1 4) (int_range 0 3)) bool);
        map
          (fun (clients, ops_per_client) ->
            Scenario.Load { clients; ops_per_client })
          (pair (int_range 1 8) (int_range 1 8));
      ])

let gen_budget =
  QCheck2.Gen.(
    map
      (fun ((nodes, depth), (ft, st), (ct, lc)) ->
        {
          Scenario.explore_nodes = nodes;
          explore_depth = depth;
          fuzz_trials = ft;
          sched_trials = st;
          chaos_trials = ct;
          long_conform = lc;
        })
      (triple
         (pair (int_range 1 1_000_000) (int_range 1 256))
         (pair (int_range 1 10_000) (int_range 0 16))
         (pair (int_range 1 10_000) bool)))

let gen_gates =
  QCheck2.Gen.(
    map
      (fun (lin, shadow, conform) ->
        (if lin then [ Scenario.Lin ] else [])
        @ (if shadow then [ Scenario.Shadow ] else [])
        @ if conform then [ Scenario.Conform ] else [])
      (triple bool bool bool))

let gen_scenario =
  QCheck2.Gen.(
    map
      (fun ((structures, (n, ops), seed), (mix_seed, faults), (sources, gates, budget)) ->
        Scenario.make ~n ~ops ~seed ?mix_seed ~faults ~sources ~gates ~budget
          ~structures ())
      (triple
         (triple
            (list_size (int_range 1 3) (oneofl all_names))
            (pair (int_range 1 6) (int_range 1 6))
            (int_range 0 1000))
         (pair (option (int_range 0 99)) gen_faults)
         (triple (list_size (int_range 1 3) gen_source) gen_gates gen_budget)))

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parse ∘ to_string = id" ~count:200 gen_scenario
       (fun t -> Scenario.parse (Scenario.to_string t) = Ok t))

let test_presets_roundtrip () =
  List.iter
    (fun (name, p) ->
      match Scenario.parse (Scenario.to_string p) with
      | Ok p' -> Alcotest.(check bool) (name ^ " roundtrips") true (p = p')
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg))
    Scenario.presets

let test_preset_base_overridden () =
  (* preset=NAME as the first field selects the base; later fields
     override it. *)
  match Scenario.parse "preset=quick;n=3;structures=treiber" with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      Alcotest.(check int) "n overridden" 3 t.Scenario.n;
      Alcotest.(check (list string)) "structures overridden" [ "treiber" ]
        t.Scenario.structures;
      Alcotest.(check int) "ops inherited from quick" Scenario.quick.Scenario.ops
        t.Scenario.ops

let check_error spec want () =
  match Scenario.parse spec with
  | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed but should not" spec)
  | Error msg -> Alcotest.(check string) "one-line error names the token" want msg

let error_cases =
  List.map
    (fun (label, spec, want) -> Alcotest.test_case label `Quick (check_error spec want))
    [
      ( "unknown key",
        "bogus=3",
        "bad --spec token \"bogus=3\": unknown key \"bogus\"" );
      ( "non-integer n",
        "n=two",
        "bad --spec token \"n=two\": \"two\" is not an integer (n)" );
      ( "unknown preset",
        "preset=mega",
        "bad --spec token \"preset=mega\": unknown preset \"mega\" (known: \
         quick, standard, century, chaos)" );
      ( "preset not first",
        "n=2;preset=quick",
        "bad --spec token \"preset=quick\": preset must be the first token" );
      ( "unknown source",
        "sources=warble",
        "bad --spec token \"sources=warble\": unknown source \"warble\"" );
      ( "unknown gate",
        "gates=vibes",
        "bad --spec token \"gates=vibes\": unknown gate \"vibes\"" );
      ( "unknown budget key",
        "budget=warp:9",
        "bad --spec token \"budget=warp:9\": unknown budget key \"warp\"" );
      ( "unknown structure",
        "structures=nope",
        "bad --spec token \"structures=nope\": unknown structure \"nope\"" );
      ( "bad faults passthrough",
        "faults=wibble",
        "bad --spec token \"faults=wibble\": bad --faults token \"wibble\"" );
      ( "missing =",
        "noequals",
        "bad --spec token \"noequals\": not of the form key=value" );
      ("empty spec", "", "bad --spec: empty scenario spec");
    ]

(* -- validate --------------------------------------------------------- *)

let check_invalid label scn needle () =
  match Scenario.validate scn with
  | Ok () -> Alcotest.fail (label ^ ": expected a validation error")
  | Error msg ->
      Alcotest.(check bool) (label ^ ": names the problem (got: " ^ msg ^ ")")
        true (contains msg needle)

let validate_cases =
  let base = Scenario.quick |> Scenario.with_structures [ "cas-counter" ] in
  [
    Alcotest.test_case "n*ops over checker limit" `Quick
      (check_invalid "63 ops" (Scenario.with_workload ~n:9 ~ops:7 base) "62");
    Alcotest.test_case "load-only workload may exceed 62" `Quick (fun () ->
        let scn =
          base
          |> Scenario.with_sources
               [ Scenario.Load { clients = 64; ops_per_client = 4 } ]
        in
        Alcotest.(check bool) "valid" true (Scenario.validate scn = Ok ()));
    Alcotest.test_case "no structures" `Quick
      (check_invalid "none" (Scenario.with_structures [] base) "no structures");
    Alcotest.test_case "unknown structure" `Quick
      (check_invalid "unknown"
         (Scenario.with_structures [ "wat" ] base)
         "unknown structure");
    Alcotest.test_case "zero budget" `Quick
      (check_invalid "budget"
         (Scenario.with_budget { scaled with Scenario.fuzz_trials = 0 } base)
         "budget");
    Alcotest.test_case "fault plan validated against n" `Quick
      (check_invalid "crash proc out of range"
         (Scenario.with_faults
            { FP.base = FP.make [ (0, FP.Crash 7) ]; rates = FP.quick_rates }
            base)
         "faults:");
    Alcotest.test_case "runner refuses invalid scenarios" `Quick (fun () ->
        let scn = Scenario.with_structures [] base in
        match Scenario.run scn with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument msg ->
            Alcotest.(check bool) "names the problem" true
              (contains msg "no structures"));
  ]

let () =
  Alcotest.run "scenario"
    [
      ("matrix: presets clean on stock", matrix_clean_cases);
      ("matrix: seeded bugs caught", matrix_bug_cases);
      ( "runner",
        [
          Alcotest.test_case "events in source order" `Quick
            test_events_arrive_in_source_order;
          Alcotest.test_case "load source beyond 62 ops" `Quick
            test_load_source_beyond_checker_limit;
          Alcotest.test_case "replay source" `Quick test_replay_source_judged;
        ] );
      ( "shadow gate power",
        [
          Alcotest.test_case "misreport passes the invariant" `Quick
            test_misreport_passes_invariant;
          Alcotest.test_case "shadow gate alone catches it" `Quick
            test_shadow_gate_alone_catches_misreport;
        ]
        @ shadow_quiet_cases );
      ( "grammar",
        [
          prop_roundtrip;
          Alcotest.test_case "presets roundtrip" `Quick test_presets_roundtrip;
          Alcotest.test_case "preset base + overrides" `Quick
            test_preset_base_overridden;
        ]
        @ error_cases );
      ("validate", validate_cases);
    ]
