(* Telemetry layer tests: the hand-rolled JSON round-trips (including
   escapes), run manifests are well-formed JSON that preserve the cell
   records, cache counters match an exercised hit/miss/store sequence,
   and a corrupt cache file degrades to a miss instead of an error. *)

module Json = Telemetry.Json
module Manifest = Telemetry.Manifest
module Bench = Telemetry.Bench

(* ---------------------------------------------------------------- *)
(* JSON emitter / parser                                            *)
(* ---------------------------------------------------------------- *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("count", Json.Int (-42));
      ("pi", Json.Float 3.14159);
      ("tricky", Json.Str "quote \" backslash \\ newline \n tab \t done");
      ("unicode", Json.Str "α=1.5, β→∞");
      ("nested", Json.List [ Json.Int 1; Json.List []; Json.Obj [ ("k", Json.Str "v") ] ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun compact ->
      match Json.parse (Json.to_string ~compact sample) with
      | Ok v ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip (compact=%b)" compact)
            true (v = sample)
      | Error msg -> Alcotest.fail msg)
    [ true; false ]

let test_json_float_precision () =
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
          Alcotest.(check (float 0.)) (Printf.sprintf "%h survives" f) f f'
      | Ok _ -> Alcotest.fail "float did not parse back as a float"
      | Error msg -> Alcotest.fail msg)
    [ 0.1; 1. /. 3.; 1e-300; 6.02e23; -0.75 ]

let test_json_nonfinite_degrade () =
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string)
    "inf -> null" "null"
    (Json.to_string (Json.Float infinity))

let test_json_escapes_parse () =
  (match Json.parse {|"a\u0041\n\u00e9\ud83d\ude00"|} with
  | Ok (Json.Str s) ->
      Alcotest.(check string) "escape decoding" "aA\n\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" bad)
      | Error _ -> ())
    [ "{"; "tru"; "[1,]"; "{\"a\":1,}"; "1 2"; "\"unterminated"; "\"\\ud800\"" ]

(* ---------------------------------------------------------------- *)
(* Manifests                                                        *)
(* ---------------------------------------------------------------- *)

let build_manifest () =
  let m =
    Manifest.create ~now:1754400000. ~version:"test-version"
      ~command:[ "run"; "fig5"; "--quick" ] ~quick:true ~seed:0 ~jobs:2
      ~cache_enabled:true ()
  in
  Manifest.record_cell m ~exp_id:"fig5" ~label:"n=2, \"quoted\"" ~worker:0
    ~waited:0.001 ~elapsed:0.25 ~cache:Manifest.Miss;
  Manifest.record_cell m ~exp_id:"fig5" ~label:"n=4" ~worker:1 ~waited:0.002
    ~elapsed:0.5 ~cache:Manifest.Hit;
  Manifest.record_experiment m ~id:"fig5" ~title:"Figure 5" ~elapsed:0.8;
  Manifest.set_pool m ~queue_wait_total:0.003
    [
      { Manifest.worker = 0; jobs = 1; busy = 0.25 };
      { Manifest.worker = 1; jobs = 1; busy = 0.5 };
    ];
  Manifest.set_cache_counters m ~hits:1 ~misses:1 ~stores:1;
  Manifest.set_elapsed m 0.9;
  m

let test_manifest_roundtrip () =
  let m = build_manifest () in
  let json =
    match Json.parse (Json.to_string (Manifest.to_json m)) with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  let str path v =
    Option.bind (Json.member path v) Json.to_str |> Option.get
  in
  Alcotest.(check string) "schema" Manifest.schema (str "schema" json);
  Alcotest.(check string) "version" "test-version" (str "version" json);
  let cells = Option.bind (Json.member "cells" json) Json.to_list |> Option.get in
  Alcotest.(check (list string))
    "cell labels round-trip in order"
    [ "n=2, \"quoted\""; "n=4" ]
    (List.map (str "label") cells);
  Alcotest.(check (list string))
    "cache flags round-trip" [ "miss"; "hit" ]
    (List.map (str "cache") cells);
  let workers_of c = Option.bind (Json.member "worker" c) Json.to_int in
  Alcotest.(check (list int))
    "worker ids round-trip" [ 0; 1 ]
    (List.filter_map workers_of cells);
  let pool = Json.member "pool" json |> Option.get in
  let stats = Option.bind (Json.member "workers" pool) Json.to_list |> Option.get in
  let jobs =
    List.fold_left
      (fun acc w -> acc + Option.get (Option.bind (Json.member "jobs" w) Json.to_int))
      0 stats
  in
  Alcotest.(check int) "pool worker jobs sum to cell count" (List.length cells) jobs

let test_manifest_run_id () =
  let m = build_manifest () in
  let id = Manifest.run_id m in
  Alcotest.(check bool) "run id names the experiment" true
    (let rec contains i =
       i + 4 <= String.length id && (String.sub id i 4 = "fig5" || contains (i + 1))
     in
     contains 0);
  Alcotest.(check bool) "run id carries a pid suffix" true
    (String.length id > 2 && String.contains id 'p')

let test_manifest_write () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "telemetry-test-%d-runs" (Unix.getpid ()))
  in
  let m = build_manifest () in
  let path = Manifest.write ~dir m in
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  (match Json.parse contents with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("written manifest is not valid JSON: " ^ msg));
  Alcotest.(check bool) "written under dir" true (Filename.dirname path = dir);
  Sys.remove path

(* Pool on_done feeding a manifest: every executed job shows up as one
   cell record, attributed to a real worker. *)
let test_manifest_from_pool () =
  let m =
    Manifest.create ~now:0. ~version:"test" ~command:[] ~quick:true ~seed:0
      ~jobs:3 ~cache_enabled:false ()
  in
  let jobs = List.init 17 (fun i -> fun () -> i * i) in
  let labels = Array.init 17 (Printf.sprintf "cell-%d") in
  Pool.with_pool ~size:3 (fun p ->
      ignore
        (Pool.run
           ~on_done:(fun ~index ~worker ~waited ~elapsed ->
             Manifest.record_cell m ~exp_id:"t" ~label:labels.(index) ~worker
               ~waited ~elapsed ~cache:Manifest.Off)
           p jobs));
  let cells = Manifest.cells m in
  Alcotest.(check int) "one record per job" 17 (List.length cells);
  Alcotest.(check (list string))
    "all labels present"
    (Array.to_list labels)
    (List.sort
       (fun a b ->
         compare
           (int_of_string (String.sub a 5 (String.length a - 5)))
           (int_of_string (String.sub b 5 (String.length b - 5))))
       (List.map (fun c -> c.Manifest.label) cells));
  Alcotest.(check bool) "workers in range" true
    (List.for_all
       (fun (c : Manifest.cell) -> c.worker >= 0 && c.worker < 3)
       cells)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Json.parse (read_file path) with
  | Ok v -> v
  | Error msg -> Alcotest.fail (path ^ ": " ^ msg)

let test_manifest_v2_fields () =
  (* Schema 2 additions: planned ids at the top level, per-cell
     attempts/status (plus error for failed cells), pool trapped. *)
  let m =
    Manifest.create ~now:1754400000. ~version:"test" ~ids:[ "fig5"; "lem11" ]
      ~command:[ "run"; "fig5"; "lem11" ] ~quick:true ~seed:0 ~jobs:2
      ~cache_enabled:false ()
  in
  Manifest.record_cell m ~exp_id:"fig5" ~label:"ok-cell" ~worker:0 ~waited:0.
    ~elapsed:0.1 ~cache:Manifest.Off;
  Manifest.record_cell ~attempts:3 m ~exp_id:"fig5" ~label:"flaky-cell"
    ~worker:1 ~waited:0. ~elapsed:0.2 ~cache:Manifest.Off;
  Manifest.record_cell ~attempts:2 ~status:(Manifest.Failed "boom") m
    ~exp_id:"lem11" ~label:"dead-cell" ~worker:0 ~waited:0. ~elapsed:0.3
    ~cache:Manifest.Off;
  Manifest.set_pool m ~trapped:1 ~queue_wait_total:0.
    [ { Manifest.worker = 0; jobs = 2; busy = 0.4 } ];
  let json =
    match Json.parse (Json.to_string (Manifest.to_json m)) with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check string) "schema is v2" "repro-run-manifest/2" Manifest.schema;
  let strs path v =
    Option.bind (Json.member path v) Json.to_list
    |> Option.get
    |> List.filter_map Json.to_str
  in
  Alcotest.(check (list string))
    "planned ids serialized" [ "fig5"; "lem11" ] (strs "ids" json);
  let cells = Option.bind (Json.member "cells" json) Json.to_list |> Option.get in
  let int_of path c = Option.bind (Json.member path c) Json.to_int |> Option.get in
  let str_of path c = Option.bind (Json.member path c) Json.to_str |> Option.get in
  Alcotest.(check (list int))
    "attempts per cell" [ 1; 3; 2 ]
    (List.map (int_of "attempts") cells);
  Alcotest.(check (list string))
    "status per cell" [ "ok"; "ok"; "failed" ]
    (List.map (str_of "status") cells);
  Alcotest.(check (list string))
    "error only on failed cells" [ "boom" ]
    (List.filter_map (fun c -> Option.bind (Json.member "error" c) Json.to_str) cells);
  let pool = Json.member "pool" json |> Option.get in
  Alcotest.(check int) "trapped serialized" 1 (int_of "trapped" pool)

let test_manifest_duration_clamping () =
  (* A stepping wall clock (or a bug) can hand the manifest a negative
     or NaN duration; validation lives at record time so the written
     JSON never carries one. *)
  let m =
    Manifest.create ~now:0. ~version:"test" ~command:[] ~quick:true ~seed:0
      ~jobs:1 ~cache_enabled:false ()
  in
  Manifest.record_cell m ~exp_id:"e" ~label:"negative" ~worker:0 ~waited:(-3.)
    ~elapsed:(-0.5) ~cache:Manifest.Off;
  Manifest.record_cell m ~exp_id:"e" ~label:"nan" ~worker:0 ~waited:Float.nan
    ~elapsed:Float.nan ~cache:Manifest.Off;
  Manifest.record_experiment m ~id:"e" ~title:"E" ~elapsed:(-1.);
  Manifest.set_elapsed m Float.neg_infinity;
  List.iter
    (fun (c : Manifest.cell) ->
      Alcotest.(check (float 0.)) (c.label ^ " waited clamped") 0. c.waited;
      Alcotest.(check (float 0.)) (c.label ^ " elapsed clamped") 0. c.elapsed)
    (Manifest.cells m);
  (* And the serialized document carries no negative duration either. *)
  let s = Json.to_string (Manifest.to_json m) in
  Alcotest.(check bool) "no negative durations serialized" false
    (let rec mem i =
       i + 2 <= String.length s && (String.sub s i 2 = "-1" || mem (i + 1))
     in
     mem 0)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "telemetry-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let journal_manifest ?(ids = [ "fig5" ]) () =
  Manifest.create ~now:1754400000. ~version:"test" ~ids
    ~command:[ "run" ] ~quick:true ~seed:7 ~jobs:1 ~cache_enabled:true ()

let test_manifest_journal_incremental () =
  (* Journal mode is what --resume reads back: the on-disk file must be
     valid and current after every recorded cell, not only at write. *)
  with_temp_dir (fun dir ->
      let m = journal_manifest () in
      let path = Manifest.enable_journal m ~dir in
      Alcotest.(check bool) "journal file exists immediately" true
        (Sys.file_exists path);
      Alcotest.(check string) "named after the run id"
        (Manifest.run_id m ^ ".json")
        (Filename.basename path);
      let cells_on_disk () =
        Option.bind (Json.member "cells" (parse_file path)) Json.to_list
        |> Option.get |> List.length
      in
      Alcotest.(check int) "no cells yet" 0 (cells_on_disk ());
      Manifest.record_cell m ~exp_id:"fig5" ~label:"c1" ~worker:0 ~waited:0.
        ~elapsed:0.1 ~cache:Manifest.Miss;
      Alcotest.(check int) "first cell on disk" 1 (cells_on_disk ());
      Manifest.record_cell ~attempts:2 ~status:(Manifest.Failed "x") m
        ~exp_id:"fig5" ~label:"c2" ~worker:0 ~waited:0. ~elapsed:0.1
        ~cache:Manifest.Miss;
      Alcotest.(check int) "second cell on disk" 2 (cells_on_disk ());
      let final = Manifest.write m in
      Alcotest.(check string) "write returns the journal path" path final)

let test_load_resume_journal () =
  with_temp_dir (fun dir ->
      let m = journal_manifest ~ids:[ "fig5"; "lem11" ] () in
      let path = Manifest.enable_journal m ~dir in
      Manifest.record_cell m ~exp_id:"fig5" ~label:"done" ~worker:0 ~waited:0.
        ~elapsed:0.1 ~cache:Manifest.Miss;
      Manifest.record_cell m ~exp_id:"fig5" ~label:"done-twice" ~worker:0
        ~waited:0. ~elapsed:0. ~cache:Manifest.Hit;
      Manifest.record_cell ~attempts:2 ~status:(Manifest.Failed "gave up") m
        ~exp_id:"fig5" ~label:"failed" ~worker:0 ~waited:0. ~elapsed:0.1
        ~cache:Manifest.Miss;
      (* The process "dies" here: lem11 never ran.  Resume must replay
         the planned ids, keep the budget, and only skip completed
         cells — failed ones re-execute. *)
      match Manifest.load_resume path with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check (list string))
            "planned ids replayed" [ "fig5"; "lem11" ] r.Manifest.resume_ids;
          Alcotest.(check bool) "quick budget kept" true r.Manifest.resume_quick;
          Alcotest.(check int) "seed kept" 7 r.Manifest.resume_seed;
          Alcotest.(check (list (pair string string)))
            "completed excludes the failed cell"
            [ ("fig5", "done"); ("fig5", "done-twice") ]
            (List.sort compare r.Manifest.completed))

let test_load_resume_v1_fallback () =
  (* A schema-1 manifest (pre-journal): no ids, no per-cell status.
     Every recorded cell counts as completed and the recorded
     experiments stand in for the plan. *)
  with_temp_dir (fun dir ->
      Telemetry.Fsutil.mkdir_p dir;
      let path = Filename.concat dir "v1.json" in
      let doc =
        Json.Obj
          [
            ("schema", Json.Str "repro-run-manifest/1");
            ("budget", Json.Obj [ ("quick", Json.Bool false); ("seed", Json.Int 3) ]);
            ( "cells",
              Json.List
                [
                  Json.Obj
                    [
                      ("exp", Json.Str "fig5");
                      ("label", Json.Str "n=2");
                      ("worker", Json.Int 0);
                    ];
                ] );
            ( "experiments",
              Json.List [ Json.Obj [ ("id", Json.Str "fig5") ] ] );
          ]
      in
      Telemetry.Fsutil.write_atomic path (Json.to_string doc);
      match Manifest.load_resume path with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check (list string))
            "experiments stand in for ids" [ "fig5" ] r.Manifest.resume_ids;
          Alcotest.(check bool) "full budget" false r.Manifest.resume_quick;
          Alcotest.(check int) "seed" 3 r.Manifest.resume_seed;
          Alcotest.(check (list (pair string string)))
            "status-less cells count as completed"
            [ ("fig5", "n=2") ]
            r.Manifest.completed)

let test_load_resume_rejects_garbage () =
  with_temp_dir (fun dir ->
      Telemetry.Fsutil.mkdir_p dir;
      let write name contents =
        let p = Filename.concat dir name in
        Telemetry.Fsutil.write_atomic p contents;
        p
      in
      let expect_error name contents =
        match Manifest.load_resume (write name contents) with
        | Ok _ -> Alcotest.fail (name ^ " accepted")
        | Error _ -> ()
      in
      expect_error "not-json.json" "definitely not json {";
      expect_error "wrong-schema.json" {|{"schema": "bench/1"}|};
      expect_error "no-experiments.json"
        {|{"schema": "repro-run-manifest/2", "quick": true, "seed": 0}|};
      match Manifest.load_resume (Filename.concat dir "missing.json") with
      | Ok _ -> Alcotest.fail "missing file accepted"
      | Error _ -> ())

(* ---------------------------------------------------------------- *)
(* Fsutil                                                           *)
(* ---------------------------------------------------------------- *)

let test_mkdir_p () =
  with_temp_dir (fun dir ->
      let deep = List.fold_left Filename.concat dir [ "a"; "b"; "c" ] in
      Telemetry.Fsutil.mkdir_p deep;
      Alcotest.(check bool) "creates missing parents" true (Sys.is_directory deep);
      (* Idempotent: the whole path already existing is not an error. *)
      Telemetry.Fsutil.mkdir_p deep;
      Alcotest.(check bool) "idempotent" true (Sys.is_directory deep))

let test_mkdir_p_fails_fast () =
  (* The bug this guards against: an mkdir_p that swallowed every
     EEXIST-looking error would "succeed" through a path component
     that is a plain file, and the caller would fail later, far from
     the cause, on the first write. *)
  with_temp_dir (fun dir ->
      Telemetry.Fsutil.mkdir_p dir;
      let file = Filename.concat dir "occupied" in
      let oc = open_out file in
      output_string oc "a file, not a directory";
      close_out oc;
      let check_raises name path =
        match Telemetry.Fsutil.mkdir_p path with
        | () -> Alcotest.fail (name ^ ": expected Sys_error")
        | exception Sys_error _ -> ()
      in
      check_raises "target is a file" file;
      check_raises "parent is a file" (Filename.concat file "child"))

let test_write_atomic () =
  with_temp_dir (fun dir ->
      Telemetry.Fsutil.mkdir_p dir;
      let path = Filename.concat dir "doc.json" in
      Telemetry.Fsutil.write_atomic path "first";
      Alcotest.(check string) "written" "first" (read_file path);
      Telemetry.Fsutil.write_atomic path "second, longer contents";
      Alcotest.(check string) "overwritten atomically" "second, longer contents"
        (read_file path);
      Alcotest.(check (list string))
        "no temp files left behind" [ "doc.json" ]
        (Array.to_list (Sys.readdir dir)))

(* ---------------------------------------------------------------- *)
(* Bench documents                                                  *)
(* ---------------------------------------------------------------- *)

let test_bench_json () =
  let doc =
    Bench.make ~now:1754400000. ~version:"test-version" ~quick:true ~seed:0
      ~repeat:3
      [
        {
          Bench.id = "fig1";
          title = "Figure 1";
          cells =
            [
              { Bench.label = "a"; seconds = 0.5 };
              { Bench.label = "b"; seconds = 0.25 };
            ];
          total = 0.75;
        };
      ]
  in
  Alcotest.(check (float 1e-9)) "total sums experiments" 0.75 (Bench.total doc);
  Alcotest.(check bool) "default filename is dated" true
    (String.length (Bench.default_filename doc) = String.length "BENCH_YYYY-MM-DD.json");
  match Json.parse (Json.to_string (Bench.to_json doc)) with
  | Error msg -> Alcotest.fail msg
  | Ok json ->
      Alcotest.(check string)
        "schema" Bench.schema
        (Option.bind (Json.member "schema" json) Json.to_str |> Option.get);
      let exps =
        Option.bind (Json.member "experiments" json) Json.to_list |> Option.get
      in
      let cells =
        Option.bind (Json.member "cells" (List.hd exps)) Json.to_list |> Option.get
      in
      Alcotest.(check (list string))
        "cell labels" [ "a"; "b" ]
        (List.map
           (fun c -> Option.bind (Json.member "label" c) Json.to_str |> Option.get)
           cells)

let test_bench_load_roundtrip () =
  let doc =
    Bench.make ~now:1754400000. ~version:"test-version" ~quick:false ~seed:3
      ~repeat:5
      [
        {
          Bench.id = "microbench";
          title = "Microbench";
          cells =
            [
              { Bench.label = "interp:n=64"; seconds = 1.2 };
              { Bench.label = "compiled:n=64"; seconds = 0.1 };
            ];
          total = 1.3;
        };
      ]
  in
  (match Bench.of_json (Bench.to_json doc) with
  | Error msg -> Alcotest.fail msg
  | Ok back -> Alcotest.(check bool) "of_json inverts to_json" true (back = doc));
  let file = Filename.temp_file "bench-load" ".json" in
  Bench.write ~file doc;
  (match Bench.load ~file with
  | Error msg -> Alcotest.fail msg
  | Ok back ->
      Alcotest.(check bool) "load inverts write" true (back = doc);
      Alcotest.(check (option (float 1e-9)))
        "cell_seconds finds a cell" (Some 0.1)
        (Bench.cell_seconds back ~id:"microbench" ~label:"compiled:n=64");
      Alcotest.(check (option (float 1e-9)))
        "cell_seconds misses cleanly" None
        (Bench.cell_seconds back ~id:"microbench" ~label:"nope"));
  Sys.remove file;
  (match Bench.of_json (Json.Obj [ ("schema", Json.Str "other/9") ]) with
  | Ok _ -> Alcotest.fail "accepted a foreign schema"
  | Error _ -> ());
  match Bench.load ~file:"/nonexistent/bench.json" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ()

(* ---------------------------------------------------------------- *)
(* Cache counters and corruption                                    *)
(* ---------------------------------------------------------------- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "telemetry-test-cache-%d-%d" (Unix.getpid ()) !counter)
    in
    dir

let budget = { Experiments.Plan.quick = true; seed = 0 }

let seq_inner =
  {
    Experiments.Plan.map =
      (fun ~exp_id:_ ~budget:_ cells ->
        List.map (fun c -> c.Experiments.Plan.work ()) cells);
  }

let cells_returning a b =
  [ Experiments.Plan.cell "a" (fun () -> a); Experiments.Plan.cell "b" (fun () -> b) ]

let test_cache_counters_and_corruption () =
  let dir = fresh_dir () in
  let stats = Experiments.Cache.create_stats () in
  let hits = ref [] in
  let runner =
    Experiments.Cache.runner ~stats
      ~on_hit:(fun ~exp_id:_ ~label -> hits := label :: !hits)
      ~dir ~inner:seq_inner ()
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      (* Cold cache: two misses, two stores. *)
      let r1 = runner.map ~exp_id:"exp" ~budget (cells_returning 1 2) in
      Alcotest.(check (list int)) "cold results" [ 1; 2 ] r1;
      Alcotest.(check int) "no hits yet" 0 stats.hits;
      Alcotest.(check int) "two misses" 2 stats.misses;
      Alcotest.(check int) "two stores" 2 stats.stores;
      (* Warm cache: the cells would fail if executed — results must
         come from disk, and on_hit must fire per cell. *)
      let poison =
        [
          Experiments.Plan.cell "a" (fun () : int -> Alcotest.fail "cell a ran");
          Experiments.Plan.cell "b" (fun () : int -> Alcotest.fail "cell b ran");
        ]
      in
      let r2 = runner.map ~exp_id:"exp" ~budget poison in
      Alcotest.(check (list int)) "warm results served from disk" [ 1; 2 ] r2;
      Alcotest.(check int) "two hits" 2 stats.hits;
      Alcotest.(check int) "misses unchanged" 2 stats.misses;
      Alcotest.(check (list string))
        "on_hit fired per served cell" [ "a"; "b" ]
        (List.sort compare !hits);
      (* Corrupt every stored entry: the next lookup must degrade to a
         miss, recompute, and repair the cache. *)
      let exp_dir = Filename.concat dir "exp" in
      Array.iter
        (fun f ->
          let oc = open_out_bin (Filename.concat exp_dir f) in
          output_string oc "not a marshalled cache entry";
          close_out oc)
        (Sys.readdir exp_dir);
      let r3 = runner.map ~exp_id:"exp" ~budget (cells_returning 10 20) in
      Alcotest.(check (list int)) "corrupt entries recomputed" [ 10; 20 ] r3;
      Alcotest.(check int) "corruption counted as misses" 4 stats.misses;
      Alcotest.(check int) "repaired entries stored" 4 stats.stores;
      (* And the repair is effective: hits again. *)
      let r4 = runner.map ~exp_id:"exp" ~budget poison in
      Alcotest.(check (list int)) "repaired results" [ 10; 20 ] r4;
      Alcotest.(check int) "hits after repair" 4 stats.hits)

(* Distinct budgets and experiment ids must not collide in the cache. *)
let test_cache_keying () =
  let dir = fresh_dir () in
  let stats = Experiments.Cache.create_stats () in
  let runner = Experiments.Cache.runner ~stats ~dir ~inner:seq_inner () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let r1 = runner.map ~exp_id:"e1" ~budget (cells_returning 1 2) in
      let other = { Experiments.Plan.quick = true; seed = 9 } in
      let r2 = runner.map ~exp_id:"e1" ~budget:other (cells_returning 3 4) in
      let r3 = runner.map ~exp_id:"e2" ~budget (cells_returning 5 6) in
      Alcotest.(check (list int)) "seed 0" [ 1; 2 ] r1;
      Alcotest.(check (list int)) "seed 9 is a different key" [ 3; 4 ] r2;
      Alcotest.(check (list int)) "exp id is part of the key" [ 5; 6 ] r3;
      Alcotest.(check int) "no false hits" 0 stats.hits)

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float precision" `Quick test_json_float_precision;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_degrade;
          Alcotest.test_case "escapes and rejects" `Quick test_json_escapes_parse;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "run id" `Quick test_manifest_run_id;
          Alcotest.test_case "write" `Quick test_manifest_write;
          Alcotest.test_case "pool feed" `Quick test_manifest_from_pool;
          Alcotest.test_case "v2 fields" `Quick test_manifest_v2_fields;
          Alcotest.test_case "duration clamping" `Quick
            test_manifest_duration_clamping;
          Alcotest.test_case "journal incremental" `Quick
            test_manifest_journal_incremental;
        ] );
      ( "resume",
        [
          Alcotest.test_case "journal round-trip" `Quick test_load_resume_journal;
          Alcotest.test_case "schema 1 fallback" `Quick
            test_load_resume_v1_fallback;
          Alcotest.test_case "rejects garbage" `Quick
            test_load_resume_rejects_garbage;
        ] );
      ( "fsutil",
        [
          Alcotest.test_case "mkdir_p" `Quick test_mkdir_p;
          Alcotest.test_case "mkdir_p fails fast" `Quick test_mkdir_p_fails_fast;
          Alcotest.test_case "write_atomic" `Quick test_write_atomic;
        ] );
      ( "bench",
        [
          Alcotest.test_case "bench json" `Quick test_bench_json;
          Alcotest.test_case "load roundtrip" `Quick test_bench_load_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "counters + corruption" `Quick
            test_cache_counters_and_corruption;
          Alcotest.test_case "keying" `Quick test_cache_keying;
        ] );
    ]
