(* Tests for the scheduler zoo: Definition 1 conditions, the Figure
   3/4 trace statistics, and crash plans. *)

open Core

let prop name ?(count = 100) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let rng () = Stats.Rng.create ~seed:99
let all_alive n = Array.make n true

(* -- Scheduler distributions -------------------------------------- *)

let test_uniform_distribution () =
  let n = 8 in
  let d =
    Sched.Scheduler.pick_distribution Sched.Scheduler.uniform ~rng:(rng ())
      ~alive:(all_alive n) ~time:0 ~trials:100_000
  in
  Array.iter
    (fun p -> Alcotest.(check bool) "each ~1/8" true (Float.abs (p -. 0.125) < 0.01))
    d

let test_uniform_skips_dead () =
  let alive = [| true; false; true; false |] in
  let d =
    Sched.Scheduler.pick_distribution Sched.Scheduler.uniform ~rng:(rng ()) ~alive
      ~time:0 ~trials:50_000
  in
  Alcotest.(check (float 0.)) "dead p1" 0. d.(1);
  Alcotest.(check (float 0.)) "dead p3" 0. d.(3);
  Alcotest.(check bool) "alive split evenly" true (Float.abs (d.(0) -. 0.5) < 0.02)

let test_round_robin_cycles () =
  let s = Sched.Scheduler.round_robin () in
  let picks =
    List.init 6 (fun t -> s.pick ~rng:(rng ()) ~alive:(all_alive 3) ~time:t)
  in
  Alcotest.(check (list int)) "cycle" [ 0; 1; 2; 0; 1; 2 ] picks

let test_round_robin_skips_dead () =
  let s = Sched.Scheduler.round_robin () in
  let alive = [| true; false; true |] in
  let picks = List.init 4 (fun t -> s.pick ~rng:(rng ()) ~alive ~time:t) in
  Alcotest.(check (list int)) "skips p1" [ 0; 2; 0; 2 ] picks

let test_zipf_skew () =
  let n = 4 in
  let s = Sched.Scheduler.zipf ~n ~alpha:1.0 in
  let d =
    Sched.Scheduler.pick_distribution s ~rng:(rng ()) ~alive:(all_alive n) ~time:0
      ~trials:100_000
  in
  (* Weights 1, 1/2, 1/3, 1/4; total = 25/12; p0 = 12/25 = 0.48. *)
  Alcotest.(check bool) "p0 ~0.48" true (Float.abs (d.(0) -. 0.48) < 0.01);
  Alcotest.(check bool) "monotone" true (d.(0) > d.(1) && d.(1) > d.(2) && d.(2) > d.(3))

let test_zipf_zero_alpha_is_uniform () =
  let n = 5 in
  let s = Sched.Scheduler.zipf ~n ~alpha:0. in
  let d =
    Sched.Scheduler.pick_distribution s ~rng:(rng ()) ~alive:(all_alive n) ~time:0
      ~trials:100_000
  in
  Array.iter
    (fun p -> Alcotest.(check bool) "uniform" true (Float.abs (p -. 0.2) < 0.01))
    d

let test_starver_never_picks_victim () =
  let s = Sched.Scheduler.starver ~victim:1 in
  for t = 0 to 999 do
    let i = s.pick ~rng:(rng ()) ~alive:(all_alive 4) ~time:t in
    Alcotest.(check bool) "victim starved" true (i <> 1)
  done

let test_starver_picks_victim_when_alone () =
  let s = Sched.Scheduler.starver ~victim:0 in
  let alive = [| true; false; false |] in
  Alcotest.(check int) "only victim left" 0 (s.pick ~rng:(rng ()) ~alive ~time:0)

let test_weak_fairness_restores_theta () =
  let adv = Sched.Scheduler.starver ~victim:2 in
  let theta = 0.05 in
  let s = Sched.Scheduler.with_weak_fairness ~theta adv in
  let v =
    Sched.Validity.check s ~rng:(rng ()) ~alive:(all_alive 4) ~trials:200_000 ()
  in
  Alcotest.(check bool) "well formed" true v.well_formed;
  Alcotest.(check bool) "weak fair at declared theta" true v.weak_fair;
  Alcotest.(check bool) "victim prob >= theta" true
    (v.min_alive_probability >= theta -. 0.01)

let test_weak_fairness_rejects_overload () =
  let adv = Sched.Scheduler.starver ~victim:0 in
  let s = Sched.Scheduler.with_weak_fairness ~theta:0.3 adv in
  Alcotest.check_raises "k*theta > 1"
    (Invalid_argument "Scheduler.with_weak_fairness: k * theta exceeds 1") (fun () ->
      ignore (s.pick ~rng:(rng ()) ~alive:(all_alive 4) ~time:0))

let test_validity_flags_starver () =
  let s = Sched.Scheduler.starver ~victim:0 in
  let v =
    Sched.Validity.check s ~rng:(rng ()) ~alive:(all_alive 3) ~trials:10_000 ()
  in
  (* Declared theta = 0, so weak fairness trivially holds, but the
     victim's empirical probability is 0. *)
  Alcotest.(check (float 0.)) "victim never scheduled" 0. v.min_alive_probability

let test_quantum_long_run_fair () =
  let s = Sched.Scheduler.quantum ~length:10 in
  let n = 4 in
  let counts = Array.make n 0 in
  let r = rng () in
  for t = 0 to 99_999 do
    let i = s.pick ~rng:r ~alive:(all_alive n) ~time:t in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "long-run fair" true
        (Float.abs ((float_of_int c /. 100_000.) -. 0.25) < 0.02))
    counts

let prop_lottery_nonzero_tickets_only =
  prop "lottery only picks positive-ticket processes"
    QCheck2.Gen.(pair (int_range 0 1000) (array_size (return 5) (int_range 0 10)))
    (fun (seed, tickets) ->
      QCheck2.assume (Array.exists (fun t -> t > 0) tickets);
      let s = Sched.Scheduler.lottery tickets in
      let g = Stats.Rng.create ~seed in
      let i = s.pick ~rng:g ~alive:(all_alive 5) ~time:0 in
      tickets.(i) > 0)

let test_quantum_survives_crash_of_current () =
  (* If the process holding the quantum dies, the scheduler must
     re-draw among the living instead of returning the corpse. *)
  let s = Sched.Scheduler.quantum ~length:100 in
  let alive = [| true; true; true |] in
  let r = rng () in
  let first = s.pick ~rng:r ~alive ~time:0 in
  alive.(first) <- false;
  for t = 1 to 50 do
    let i = s.pick ~rng:r ~alive ~time:t in
    Alcotest.(check bool) "never picks the dead current" true (i <> first)
  done

let test_weighted_rejects_negative () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Scheduler.weighted: negative weight") (fun () ->
      ignore (Sched.Scheduler.weighted [| 1.; -1. |]))

let test_weak_fairness_rejects_nonpositive_theta () =
  Alcotest.check_raises "theta = 0"
    (Invalid_argument "Scheduler.with_weak_fairness: theta must be > 0") (fun () ->
      ignore (Sched.Scheduler.with_weak_fairness ~theta:0. Sched.Scheduler.uniform))

let test_replay_follows_recording () =
  let order = [| 2; 0; 1; 1; 2 |] in
  let s = Sched.Scheduler.replay order in
  let alive = all_alive 3 in
  for t = 0 to 9 do
    Alcotest.(check int)
      (Printf.sprintf "step %d" t)
      order.(t mod 5)
      (s.pick ~rng:(rng ()) ~alive ~time:t)
  done

let test_replay_skips_dead () =
  let s = Sched.Scheduler.replay [| 0; 0; 0 |] in
  let alive = [| false; true; true |] in
  for t = 0 to 5 do
    let i = s.pick ~rng:(rng ()) ~alive ~time:t in
    Alcotest.(check bool) "falls back to a living process" true (i <> 0)
  done

let test_replay_rejects_empty () =
  Alcotest.check_raises "empty schedule"
    (Invalid_argument "Scheduler.replay: empty schedule") (fun () ->
      ignore (Sched.Scheduler.replay [||]))

let test_quantum_rejects_bad_length () =
  Alcotest.check_raises "length 0"
    (Invalid_argument "Scheduler.quantum: length must be >= 1") (fun () ->
      ignore (Sched.Scheduler.quantum ~length:0))

(* -- Traces (Figures 3 and 4) -------------------------------------- *)

let test_trace_step_shares () =
  let t = Sched.Trace.of_array ~n:3 [| 0; 1; 2; 0; 0; 1 |] in
  let shares = Sched.Trace.step_shares t in
  Alcotest.(check (float 1e-9)) "p0 share" 0.5 shares.(0);
  Alcotest.(check (float 1e-9)) "p1 share" (1. /. 3.) shares.(1);
  Alcotest.(check (float 1e-9)) "p2 share" (1. /. 6.) shares.(2)

let test_trace_successors () =
  let t = Sched.Trace.of_array ~n:2 [| 0; 1; 0; 0; 1 |] in
  (* After p0: successors are 1, 0, 1 -> p1 twice, p0 once.  The final
     p1 has no successor. *)
  let d = Sched.Trace.next_step_distribution t ~after:0 in
  Alcotest.(check (float 1e-9)) "to p0" (1. /. 3.) d.(0);
  Alcotest.(check (float 1e-9)) "to p1" (2. /. 3.) d.(1)

let test_trace_uniform_successors_uniform () =
  let n = 6 in
  let tr = Sched.Trace.create ~n in
  let g = rng () in
  for _ = 1 to 300_000 do
    Sched.Trace.record tr (Stats.Rng.int g n)
  done;
  let m = Sched.Trace.successor_matrix tr in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j p ->
          Alcotest.(check bool)
            (Printf.sprintf "succ[%d][%d] ~ 1/n" i j)
            true
            (Float.abs (p -. (1. /. float_of_int n)) < 0.02))
        row)
    m

let test_trace_run_lengths () =
  let t = Sched.Trace.of_array ~n:2 [| 0; 0; 1; 0; 1; 1; 1 |] in
  Alcotest.(check (list (pair int int))) "runs of p0" [ (1, 1); (2, 1) ]
    (Sched.Trace.run_length_counts t ~proc:0);
  Alcotest.(check (list (pair int int))) "runs of p1" [ (1, 1); (3, 1) ]
    (Sched.Trace.run_length_counts t ~proc:1)

let test_trace_max_gap () =
  let t = Sched.Trace.of_array ~n:3 [| 0; 1; 2; 2; 1; 0; 1 |] in
  Alcotest.(check int) "gap p0" 4 (Sched.Trace.max_gap t ~proc:0);
  (* p2's last step is at index 3; the trailing gap 4..6 has length 3. *)
  Alcotest.(check int) "gap p2" 3 (Sched.Trace.max_gap t ~proc:2)

(* -- Crash plans ---------------------------------------------------- *)

let test_crash_plan_dedup () =
  let p = Sched.Crash_plan.of_list [ (10, 1); (5, 1); (7, 2) ] in
  Alcotest.(check int) "count" 2 (Sched.Crash_plan.count p);
  Alcotest.(check (list int)) "p1 crashes at its earliest time" [ 1 ]
    (Sched.Crash_plan.crashes_at p ~time:5);
  Alcotest.(check (list int)) "crashed_by 7" [ 1; 2 ]
    (List.sort compare (Sched.Crash_plan.crashed_by p ~time:7))

let test_crash_plan_validation () =
  (match Sched.Crash_plan.validate ~n:3 (Sched.Crash_plan.of_list [ (1, 0); (2, 1) ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "n-1 crashes should be fine: %s" e);
  (match Sched.Crash_plan.validate ~n:2 (Sched.Crash_plan.of_list [ (1, 0); (2, 1) ]) with
  | Ok () -> Alcotest.fail "all-crash should be rejected"
  | Error _ -> ());
  match Sched.Crash_plan.validate ~n:2 (Sched.Crash_plan.of_list [ (1, 5) ]) with
  | Ok () -> Alcotest.fail "out-of-range process"
  | Error _ -> ()

(* -- Fault plans (chaos layer) -------------------------------------- *)

module FP = Sched.Fault_plan

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_fault_plan_parse_roundtrip () =
  let spec =
    match FP.parse_spec "crash@5:1,restart@9:1,stall@3:0+7,casfail:*=0.25" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check bool) "no rates in an explicit spec" true
    (spec.FP.rates = FP.zero_rates);
  Alcotest.(check string) "serializes time-sorted"
    "stall@3:0+7,crash@5:1,restart@9:1,casfail:*=0.25"
    (FP.to_string spec.FP.base);
  (match FP.parse_spec (FP.spec_to_string spec) with
  | Ok again ->
      Alcotest.(check string) "round-trip is stable" (FP.spec_to_string spec)
        (FP.spec_to_string again)
  | Error e -> Alcotest.failf "re-parse failed: %s" e);
  (match FP.parse_spec "crash~0.1,recover~0.2,stall~0.05:9,casfail~0.3" with
  | Ok s ->
      Alcotest.(check bool) "rates parsed" true
        (s.FP.rates
        = { FP.crash = 0.1; recover = 0.2; stall = 0.05; stall_len = 9; casfail = 0.3 });
      Alcotest.(check bool) "no explicit events" true (FP.is_none s.FP.base)
  | Error e -> Alcotest.failf "rate parse failed: %s" e);
  (match FP.parse_spec "none" with
  | Ok s -> Alcotest.(check bool) "none is empty" true (FP.spec_is_none s)
  | Error e -> Alcotest.failf "none: %s" e);
  match FP.parse_spec "crash@oops" with
  | Ok _ -> Alcotest.fail "bad token accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the token" true (contains msg "crash@oops")

let test_fault_plan_validation () =
  let ok = function Ok () -> true | Error _ -> false in
  Alcotest.(check bool) "all-crash healed by a restart is fine" true
    (ok
       (FP.validate ~n:2
          (FP.make [ (0, FP.Crash 0); (0, FP.Crash 1); (5, FP.Restart 1) ])));
  Alcotest.(check bool) "permanent all-crash rejected" false
    (ok (FP.validate ~n:2 (FP.make [ (0, FP.Crash 0); (0, FP.Crash 1) ])));
  Alcotest.(check bool) "process out of range rejected" false
    (ok (FP.validate ~n:2 (FP.make [ (0, FP.Crash 7) ])));
  Alcotest.(check bool) "negative stall rejected" false
    (ok (FP.validate ~n:2 (FP.make [ (0, FP.Stall (0, -1)) ])));
  Alcotest.(check bool) "spurious rate >= 1 rejected" false
    (ok (FP.validate ~n:2 (FP.make ~spurious:[ (None, 1.5) ] [])));
  Alcotest.(check bool) "per-process rate in range ok" true
    (ok (FP.validate ~n:2 (FP.make ~spurious:[ (Some 1, 0.5) ] [])))

let test_fault_plan_instantiate () =
  let spec =
    {
      FP.base = FP.none;
      rates =
        { FP.crash = 0.2; recover = 0.1; stall = 0.05; stall_len = 4; casfail = 0.2 };
    }
  in
  let p1 = FP.instantiate spec ~seed:7 ~n:4 ~horizon:200 in
  let p2 = FP.instantiate spec ~seed:7 ~n:4 ~horizon:200 in
  Alcotest.(check string) "deterministic by seed" (FP.to_string p1) (FP.to_string p2);
  Alcotest.(check bool) "always leaves a survivor" true
    (match FP.validate ~n:4 p1 with Ok () -> true | Error _ -> false);
  Alcotest.(check bool) "casfail rate becomes a spurious entry" true
    (FP.has_spurious p1);
  let base = FP.make [ (3, FP.Crash 1) ] in
  Alcotest.(check string) "all-zero rates return the base untouched"
    (FP.to_string base)
    (FP.to_string
       (FP.instantiate { FP.base; rates = FP.zero_rates } ~seed:9 ~n:4 ~horizon:100))

let test_fault_plan_merge_and_rates () =
  let a = FP.make ~spurious:[ (Some 0, 0.2) ] [ (1, FP.Crash 0) ] in
  let b =
    FP.make ~spurious:[ (None, 0.1) ] [ (0, FP.Stall (1, 5)); (2, FP.Restart 0) ]
  in
  let m = FP.merge a b in
  Alcotest.(check int) "events unioned" 3 (Array.length (FP.events m));
  let rates = FP.spurious_rates ~n:2 m in
  Alcotest.(check (float 1e-9)) "max rate wins for p0" 0.2 rates.(0);
  Alcotest.(check (float 1e-9)) "global rate applies to p1" 0.1 rates.(1);
  Alcotest.(check int) "restart count" 1 (FP.restart_count m);
  Alcotest.(check int) "stall total" 5 (FP.stall_total m);
  Alcotest.(check string) "crash-plan bridge" "crash@1:0,crash@4:2"
    (FP.to_string
       (FP.of_crash_plan (Sched.Crash_plan.of_list [ (4, 2); (1, 0) ])))

(* -- Distribution probes vs stateful schedulers --------------------- *)

let test_pick_distribution_refuses_stateful () =
  (* Sampling a stateful scheduler's pick repeatedly would advance its
     state between samples, so the probe must refuse rather than
     silently return Π_τ averaged over perturbed states. *)
  let s = Sched.Scheduler.round_robin () in
  Alcotest.(check bool) "round_robin declares stateful" true s.stateful;
  Alcotest.check_raises "stateful refused"
    (Invalid_argument
       "Scheduler.pick_distribution: round-robin is stateful; repeated \
        sampling would perturb its internal state (use \
        time_average_distribution)")
    (fun () ->
      ignore
        (Sched.Scheduler.pick_distribution s ~rng:(rng ()) ~alive:(all_alive 3)
           ~time:0 ~trials:100))

let test_time_average_round_robin_exact () =
  (* Trial counts are rounded up to a multiple of the alive count, so
     the deterministic cycle averages to exactly 1/k — including with
     a dead process in the ring. *)
  let alive = [| true; true; false; true |] in
  let d =
    Sched.Scheduler.time_average_distribution
      (Sched.Scheduler.round_robin ())
      ~rng:(rng ()) ~alive ~trials:1000
  in
  Alcotest.(check (float 0.)) "dead p2 never" 0. d.(2);
  Array.iteri
    (fun i p ->
      if alive.(i) then
        Alcotest.(check bool)
          (Printf.sprintf "p%d exactly 1/3" i)
          true
          (Float.abs (p -. (1. /. 3.)) < 1e-9))
    d

let test_replay_string_roundtrip () =
  let order = [| 0; 3; 1; 1; 0; 2; 7; 0 |] in
  Alcotest.(check (array int))
    "of_string (to_string x) = x" order
    (Sched.Scheduler.replay_of_string (Sched.Scheduler.replay_to_string order));
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Scheduler.replay_of_string: empty schedule") (fun () ->
      ignore (Sched.Scheduler.replay_of_string "  "));
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Sched.Scheduler.replay_of_string "1,x,2");
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sched"
    [
      ( "schedulers",
        [
          Alcotest.test_case "uniform distribution" `Quick test_uniform_distribution;
          Alcotest.test_case "uniform skips dead" `Quick test_uniform_skips_dead;
          Alcotest.test_case "round robin cycles" `Quick test_round_robin_cycles;
          Alcotest.test_case "round robin skips dead" `Quick test_round_robin_skips_dead;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf alpha=0 uniform" `Quick test_zipf_zero_alpha_is_uniform;
          Alcotest.test_case "starver starves" `Quick test_starver_never_picks_victim;
          Alcotest.test_case "starver fallback" `Quick test_starver_picks_victim_when_alone;
          Alcotest.test_case "quantum long-run fair" `Quick test_quantum_long_run_fair;
          Alcotest.test_case "quantum survives crash" `Quick
            test_quantum_survives_crash_of_current;
          Alcotest.test_case "weighted validation" `Quick test_weighted_rejects_negative;
          Alcotest.test_case "weak-fairness validation" `Quick
            test_weak_fairness_rejects_nonpositive_theta;
          Alcotest.test_case "quantum validation" `Quick test_quantum_rejects_bad_length;
          Alcotest.test_case "replay follows recording" `Quick test_replay_follows_recording;
          Alcotest.test_case "replay skips dead" `Quick test_replay_skips_dead;
          Alcotest.test_case "replay validation" `Quick test_replay_rejects_empty;
          prop_lottery_nonzero_tickets_only;
        ] );
      ( "weak fairness (Def 1)",
        [
          Alcotest.test_case "theta restored over adversary" `Quick
            test_weak_fairness_restores_theta;
          Alcotest.test_case "k*theta > 1 rejected" `Quick
            test_weak_fairness_rejects_overload;
          Alcotest.test_case "validity flags starver" `Quick test_validity_flags_starver;
        ] );
      ( "traces",
        [
          Alcotest.test_case "step shares (Fig 3)" `Quick test_trace_step_shares;
          Alcotest.test_case "successors (Fig 4)" `Quick test_trace_successors;
          Alcotest.test_case "uniform successors uniform" `Quick
            test_trace_uniform_successors_uniform;
          Alcotest.test_case "run lengths" `Quick test_trace_run_lengths;
          Alcotest.test_case "max gap" `Quick test_trace_max_gap;
        ] );
      ( "crash plans",
        [
          Alcotest.test_case "dedup earliest" `Quick test_crash_plan_dedup;
          Alcotest.test_case "validation" `Quick test_crash_plan_validation;
        ] );
      ( "fault plans",
        [
          Alcotest.test_case "parse round-trip" `Quick test_fault_plan_parse_roundtrip;
          Alcotest.test_case "validation" `Quick test_fault_plan_validation;
          Alcotest.test_case "instantiate deterministic" `Quick
            test_fault_plan_instantiate;
          Alcotest.test_case "merge and rates" `Quick test_fault_plan_merge_and_rates;
        ] );
      ( "distribution probes",
        [
          Alcotest.test_case "stateful refused" `Quick
            test_pick_distribution_refuses_stateful;
          Alcotest.test_case "round-robin time average exact" `Quick
            test_time_average_round_robin_exact;
          Alcotest.test_case "replay string round-trip" `Quick
            test_replay_string_roundtrip;
        ] );
    ]
