(* Seed plumbing shared by the randomized tests.

   Every QCheck property and every seeded unit test in this suite
   derives its randomness from one master seed, taken from the
   REPRO_TEST_SEED environment variable (default 421).  A failing
   property prints that seed in its error message, so any failure is
   re-runnable exactly:

     REPRO_TEST_SEED=<printed seed> dune runtest *)

let seed =
  match Sys.getenv_opt "REPRO_TEST_SEED" with
  | None | Some "" -> 421
  | Some s -> (
      try int_of_string (String.trim s)
      with _ -> invalid_arg "REPRO_TEST_SEED must be an integer")

(* A fresh deterministic RNG per call site; [salt] decorrelates
   different tests that share the master seed. *)
let rng ?(salt = 0) () = Stats.Rng.create ~seed:(seed + (7919 * salt))

let std_rng ?(salt = 0) () = Random.State.make [| seed; salt |]

(* Run a QCheck2 property deterministically under the master seed and
   fail through Alcotest with a replayable message.  We drive
   [check_cell ~rand] ourselves rather than going through
   [QCheck_alcotest.to_alcotest] so the seed is ours to choose and to
   print. *)
let prop ?(count = 200) ?print name gen law =
  Alcotest.test_case name `Quick (fun () ->
      let cell = QCheck2.Test.make_cell ~count ~name ?print gen law in
      let res = QCheck2.Test.check_cell ~rand:(std_rng ()) cell in
      let fail fmt = Alcotest.failf ("%s: " ^^ fmt ^^ " (REPRO_TEST_SEED=%d)") name in
      match QCheck2.TestResult.get_state res with
      | QCheck2.TestResult.Success -> ()
      | QCheck2.TestResult.Failed { instances } ->
          let c = List.hd instances in
          fail "counterexample %s after %d shrink steps"
            (match print with
            | Some p -> p c.QCheck2.TestResult.instance
            | None -> "<no printer>")
            c.QCheck2.TestResult.shrink_steps seed
      | QCheck2.TestResult.Failed_other { msg } -> fail "%s" msg seed
      | QCheck2.TestResult.Error { exn; _ } ->
          fail "raised %s" (Printexc.to_string exn) seed)
